//===- ir/Verify.cpp ------------------------------------------------------===//

#include "ir/Verify.h"

#include <sstream>

using namespace tfgc;

namespace {

class Verifier {
public:
  explicit Verifier(const IrProgram &P) : P(P) {}

  bool run() {
    if (P.MainId >= P.Functions.size())
      return fail("main function id out of range");
    if (P.fn(P.MainId).IsClosure)
      return fail("main must not be a closure");
    for (const IrFunction &F : P.Functions)
      if (!verifyFunction(F))
        return false;
    for (const CallSiteInfo &S : P.Sites)
      if (!verifySite(S))
        return false;
    return true;
  }

  std::string error() const { return Error; }

private:
  const IrProgram &P;
  std::string Error;

  bool fail(const std::string &Msg) {
    if (Error.empty())
      Error = Msg;
    return false;
  }
  bool failAt(const IrFunction &F, size_t Idx, const std::string &Msg) {
    std::ostringstream OS;
    OS << "fn " << F.Id << " '" << F.Name << "' instr " << Idx << ": " << Msg;
    return fail(OS.str());
  }

  bool verifyFunction(const IrFunction &F) {
    if (F.SlotTypes.size() != F.numSlots())
      return fail("slot type table size mismatch in " + F.Name);
    if (F.NumParams > F.numSlots())
      return fail("more parameters than slots in " + F.Name);
    for (Type *T : F.SlotTypes)
      if (!T)
        return fail("null slot type in " + F.Name);
    if (F.Code.empty())
      return fail("empty body in " + F.Name);
    if (!F.FunTy)
      return fail("missing function type on " + F.Name);
    if (F.IsClosure && F.NumParams == 0)
      return fail("closure function without self slot: " + F.Name);
    if (!F.IsClosure && !F.EnvTypes.empty())
      return fail("non-closure function with env types: " + F.Name);

    for (LabelId L = 0; L < F.LabelTargets.size(); ++L)
      if (F.LabelTargets[L] > F.Code.size())
        return fail("label target out of range in " + F.Name);

    for (size_t I = 0; I < F.Code.size(); ++I) {
      const Instr &In = F.Code[I];
      if (In.hasDst() && In.Dst >= F.numSlots())
        return failAt(F, I, "destination slot out of range");
      for (SlotIndex S : In.Srcs)
        if (S >= F.numSlots())
          return failAt(F, I, "source slot out of range");
      switch (In.Op) {
      case Opcode::Jump:
        if (In.Label >= F.LabelTargets.size())
          return failAt(F, I, "jump to unknown label");
        break;
      case Opcode::Branch:
        if (In.Label >= F.LabelTargets.size() ||
            In.Label2 >= F.LabelTargets.size())
          return failAt(F, I, "branch to unknown label");
        if (In.Srcs.size() != 1)
          return failAt(F, I, "branch needs exactly one condition");
        break;
      case Opcode::Call: {
        if (In.Callee >= P.Functions.size())
          return failAt(F, I, "call to unknown function");
        const IrFunction &Callee = P.fn(In.Callee);
        if (Callee.IsClosure)
          return failAt(F, I, "direct call to a closure function");
        if (In.Srcs.size() != Callee.NumParams)
          return failAt(F, I, "call arity mismatch");
        break;
      }
      case Opcode::CallIndirect:
        if (In.Srcs.empty())
          return failAt(F, I, "indirect call without a closure operand");
        break;
      case Opcode::MakeClosure: {
        if (In.Callee >= P.Functions.size())
          return failAt(F, I, "closure over unknown function");
        const IrFunction &Callee = P.fn(In.Callee);
        if (!Callee.IsClosure)
          return failAt(F, I, "closure over a non-closure function");
        if (In.Srcs.size() != Callee.EnvTypes.size())
          return failAt(F, I, "closure env arity mismatch");
        break;
      }
      case Opcode::MakeData:
        if (!In.Data)
          return failAt(F, I, "make.data without datatype info");
        if (In.CtorIdx >= In.Data->Ctors.size())
          return failAt(F, I, "constructor index out of range");
        if (In.Srcs.size() != In.Data->Ctors[In.CtorIdx].Fields.size())
          return failAt(F, I, "constructor field arity mismatch");
        break;
      case Opcode::Return:
        if (In.Srcs.size() != 1)
          return failAt(F, I, "return needs exactly one value");
        break;
      default:
        break;
      }
      // Every GC point must reference a valid site owned by this
      // function/instruction.
      if (In.Site != InvalidSite) {
        if (In.Site >= P.Sites.size())
          return failAt(F, I, "site id out of range");
        const CallSiteInfo &S = P.site(In.Site);
        if (S.Caller != F.Id || S.InstrIdx != I)
          return failAt(F, I, "site back-reference mismatch");
      }
      // Fallthrough off the end of the body is a bug.
      if (I + 1 == F.Code.size()) {
        switch (In.Op) {
        case Opcode::Return:
        case Opcode::Abort:
        case Opcode::Jump:
        case Opcode::Branch:
          break;
        default:
          return failAt(F, I, "function may fall off its end");
        }
      }
    }
    return true;
  }

  bool verifySite(const CallSiteInfo &S) {
    if (S.Caller >= P.Functions.size())
      return fail("site caller out of range");
    const IrFunction &F = P.fn(S.Caller);
    if (S.InstrIdx >= F.Code.size())
      return fail("site instruction index out of range in " + F.Name);
    for (SlotIndex Slot : S.TraceSlots)
      if (Slot >= F.numSlots())
        return fail("site trace slot out of range in " + F.Name);
    if (S.Kind == SiteKind::Direct) {
      if (S.Callee >= P.Functions.size())
        return fail("direct site callee out of range");
      if (S.CalleeTypeInst.size() != P.fn(S.Callee).TypeParams.size())
        return fail("site instantiation arity mismatch for " +
                    P.fn(S.Callee).Name);
    }
    if (S.Kind == SiteKind::Indirect && !S.ClosureTy)
      return fail("indirect site without closure type in " + F.Name);
    return true;
  }
};

} // namespace

bool tfgc::verifyIr(const IrProgram &P, std::string *Error) {
  Verifier V(P);
  bool Ok = V.run();
  if (!Ok && Error)
    *Error = V.error();
  return Ok;
}
