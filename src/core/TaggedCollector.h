//===- core/TaggedCollector.h - Tagged baseline -----------------*- C++ -*-===//
///
/// \file
/// The program-independent baseline the paper wants to beat: every word
/// carries a tag bit, every object a header, and the collector needs no
/// compiler-generated metadata at all — it scans every slot of every frame
/// and every payload word of every Scan-kind object by tag bit. The costs
/// show up elsewhere: headers (E2), boxed floats (E1/E2), tag arithmetic
/// (E1), and no dead-variable filtering (E5).
///
//===----------------------------------------------------------------------===//

#ifndef TFGC_CORE_TAGGEDCOLLECTOR_H
#define TFGC_CORE_TAGGEDCOLLECTOR_H

#include "core/Collector.h"
#include "core/Space.h"

namespace tfgc {

class TaggedCollector : public Collector {
public:
  TaggedCollector(GcAlgorithm Algo, size_t HeapBytes, Stats &St,
                  size_t NurseryBytes = 0)
      : Collector(ValueModel::Tagged, Algo, HeapBytes, St, NurseryBytes) {}

protected:
  void traceRoots(RootSet &Roots, Space &Sp) override;
  void traceRemset(Space &Sp) override;

private:
  /// Traces one word by tag bit + header, queueing Scan-kind payloads.
  /// Counters land in \p S; \p Census non-null routes census increments
  /// into a GC worker's private accumulator (and suppresses the profiler,
  /// whose visit stream is serial-only).
  Word traceWord(Space &Sp, std::vector<Word> &ScanList, Word W, Stats &S,
                 CensusCounts *Census);
  void drainScanList(Space &Sp, std::vector<Word> &ScanList, Stats &S,
                     CensusCounts *Census);
  void traceOneStack(TaskStack &Stack, Space &Sp,
                     std::vector<Word> &ScanList, Stats &S,
                     CensusCounts *Census);
};

} // namespace tfgc

#endif // TFGC_CORE_TAGGEDCOLLECTOR_H
