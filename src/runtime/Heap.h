//===- runtime/Heap.h - Semispace copying heap ------------------*- C++ -*-===//
///
/// \file
/// A semispace heap driven by the collectors. The heap knows nothing about
/// object layouts — under the tag-free model layout lives exclusively in
/// the compiler-generated GC metadata, so the heap only provides raw
/// allocation, space tests, and forwarding.
///
/// Forwarding without headers: during a collection a side bitmap over
/// from-space (one bit per word, alive only for the duration of the
/// collection) marks objects whose word 0 has been overwritten with the
/// forwarding address. The bitmap is the documented substitution for
/// "check whether word 0 points into to-space" and is charged to the
/// collector in the space accounting.
///
//===----------------------------------------------------------------------===//

#ifndef TFGC_RUNTIME_HEAP_H
#define TFGC_RUNTIME_HEAP_H

#include "runtime/Value.h"

#include <algorithm>
#include <atomic>
#include <cassert>
#include <cstddef>
#include <memory>
#include <thread>
#include <vector>

namespace tfgc {

class Heap {
public:
  explicit Heap(size_t CapacityBytes);

  // -- Mutator interface ---------------------------------------------------
  /// Allocates \p Words words; returns nullptr when the space is full.
  /// The check compares against the remaining word count — computing
  /// `Alloc + Words` first would form a past-the-end pointer (UB) for
  /// adversarially large \p Words.
  Word *tryAllocate(size_t Words) {
    if (Words > (size_t)(End - Alloc))
      return nullptr;
    Word *P = Alloc;
    Alloc += Words;
    BytesAllocatedTotal += Words * sizeof(Word);
    return P;
  }

  /// Carves a TLAB chunk of at least \p MinWords (and preferably
  /// \p PreferredWords) off the shared allocation cursor with a CAS loop,
  /// so concurrent mutator threads refill lock-free. On success sets
  /// [OutTop, OutEnd) and returns true; false when the remaining space
  /// can't fit \p MinWords. Chunk accounting lands in
  /// bytesAllocatedTotal() at carve time (TLAB-waste semantics; see
  /// sched/Tlab.h). Plain tryAllocate() and refillTlab() must not run
  /// concurrently — the collector routes all threaded-mode allocation
  /// through TLABs.
  bool refillTlab(size_t MinWords, size_t PreferredWords, Word *&OutTop,
                  Word *&OutEnd) {
    std::atomic_ref<Word *> A(Alloc);
    Word *Cur = A.load(std::memory_order_relaxed);
    for (;;) {
      size_t Avail = (size_t)(End - Cur);
      if (Avail < MinWords)
        return false;
      size_t Take = std::min(Avail, std::max(MinWords, PreferredWords));
      if (A.compare_exchange_weak(Cur, Cur + Take,
                                  std::memory_order_relaxed)) {
        OutTop = Cur;
        OutEnd = Cur + Take;
        std::atomic_ref<uint64_t>(BytesAllocatedTotal)
            .fetch_add(Take * sizeof(Word), std::memory_order_relaxed);
        return true;
      }
    }
  }

  size_t capacityBytes() const { return CapacityWords * sizeof(Word); }
  size_t usedBytes() const { return (size_t)(Alloc - Base) * sizeof(Word); }
  size_t freeWords() const { return (size_t)(End - Alloc); }
  uint64_t bytesAllocatedTotal() const { return BytesAllocatedTotal; }

  bool contains(Word P) const {
    return P >= (Word)(uintptr_t)Base && P < (Word)(uintptr_t)End;
  }

  // -- Collector interface --------------------------------------------------
  /// Starts a collection into a fresh to-space of \p NewCapacityWords
  /// (0 = keep the current capacity). From-space stays readable until
  /// endCollection().
  void beginCollection(size_t NewCapacityWords = 0);

  /// Allocates in to-space during a collection. Aborts on overflow (the
  /// caller sizes to-space to at least the live data).
  Word *allocateInToSpace(size_t Words) {
    assert(Collecting && "not collecting");
    assert(ToAlloc + Words <= ToEnd && "to-space overflow");
    Word *P = ToAlloc;
    ToAlloc += Words;
    return P;
  }

  bool isForwarded(const Word *Obj) const {
    size_t Index = Obj - Base;
    return (ForwardBits[Index >> 6] >> (Index & 63)) & 1;
  }
  Word forwardee(const Word *Obj) const {
    assert(isForwarded(Obj));
    return Obj[0];
  }
  void setForwarded(Word *Obj, Word NewAddr) {
    size_t Index = Obj - Base;
    ForwardBits[Index >> 6] |= (uint64_t)1 << (Index & 63);
    Obj[0] = NewAddr;
    // Keep the publish bitmap coherent when a serial phase (remset scan,
    // single-stack fallback) forwards objects inside an armed parallel
    // collection: a later waitForwardee() must not spin forever.
    if (!PublishedBits.empty())
      PublishedBits[Index >> 6] |= (uint64_t)1 << (Index & 63);
  }

  // -- Parallel tracing (claim/publish protocol) ----------------------------
  /// Arms the two-bitmap protocol: beginCollection() additionally sizes a
  /// "published" bitmap, and forwarding splits into claim (atomic fetch-or
  /// on the forward bit; exactly one tracer wins an object) and publish
  /// (write the forwarding address into word 0, then release the
  /// published bit). Losers spin in waitForwardee() until the winner
  /// publishes. Word 0 of a claimed-but-unpublished object is unstable,
  /// which is why tracers must read discriminants/code addresses only
  /// *after* winning the claim (core/Tracer.cpp).
  void setParallelTracing(bool On) { ParallelArm = On; }
  bool parallelTracing() const { return ParallelArm; }

  /// Lock-free read of the claim bit (parallel alreadyVisited fast path;
  /// a racing claim is re-arbitrated by tryClaimForward).
  bool isForwardedAtomic(const Word *Obj) const {
    size_t Index = Obj - Base;
    std::atomic_ref<uint64_t> B(
        const_cast<uint64_t &>(ForwardBits[Index >> 6]));
    return (B.load(std::memory_order_relaxed) >> (Index & 63)) & 1;
  }

  /// Atomically claims \p Obj for forwarding. True = caller won and must
  /// copy + publishForward(); false = somebody else owns it (use
  /// waitForwardee()).
  bool tryClaimForward(Word *Obj) {
    size_t Index = Obj - Base;
    uint64_t Bit = (uint64_t)1 << (Index & 63);
    std::atomic_ref<uint64_t> B(ForwardBits[Index >> 6]);
    return !(B.fetch_or(Bit, std::memory_order_acq_rel) & Bit);
  }

  void publishForward(Word *Obj, Word NewAddr) {
    Obj[0] = NewAddr;
    size_t Index = Obj - Base;
    std::atomic_ref<uint64_t> B(PublishedBits[Index >> 6]);
    B.fetch_or((uint64_t)1 << (Index & 63), std::memory_order_release);
  }

  Word waitForwardee(const Word *Obj) const {
    size_t Index = Obj - Base;
    uint64_t Bit = (uint64_t)1 << (Index & 63);
    std::atomic_ref<uint64_t> B(
        const_cast<uint64_t &>(PublishedBits[Index >> 6]));
    while (!(B.load(std::memory_order_acquire) & Bit))
      std::this_thread::yield();
    return Obj[0];
  }

  /// To-space bump shared by concurrent GC workers (CAS loop). The serial
  /// allocateInToSpace() and this must not interleave within one phase.
  Word *allocateInToSpaceParallel(size_t Words) {
    assert(Collecting && "not collecting");
    std::atomic_ref<Word *> A(ToAlloc);
    Word *Cur = A.load(std::memory_order_relaxed);
    for (;;) {
      assert(Words <= (size_t)(ToEnd - Cur) && "to-space overflow");
      if (A.compare_exchange_weak(Cur, Cur + Words,
                                  std::memory_order_relaxed))
        return Cur;
    }
  }

  /// True while collecting and P points into from-space.
  bool inFromSpace(Word P) const {
    return P >= (Word)(uintptr_t)Base && P < (Word)(uintptr_t)End;
  }

  /// Discards from-space; to-space becomes the live space.
  void endCollection();

  bool collecting() const { return Collecting; }
  size_t forwardBitmapBytes() const { return ForwardBits.size() * 8; }

  /// Census hook: words that survived the most recent collection (the
  /// to-space fill level recorded at endCollection). 0 before the first
  /// collection.
  uint64_t survivorWords() const { return LastSurvivorWords; }

private:
  std::unique_ptr<Word[]> Space;   ///< Current (from-) space.
  std::unique_ptr<Word[]> ToSpace; ///< Only alive during a collection.
  Word *Base = nullptr, *Alloc = nullptr, *End = nullptr;
  Word *ToBase = nullptr, *ToAlloc = nullptr, *ToEnd = nullptr;
  size_t CapacityWords = 0;
  size_t ToCapacityWords = 0;
  std::vector<uint64_t> ForwardBits;
  /// Sized alongside ForwardBits while ParallelArm; empty otherwise.
  std::vector<uint64_t> PublishedBits;
  bool ParallelArm = false;
  bool Collecting = false;
  uint64_t BytesAllocatedTotal = 0;
  uint64_t LastSurvivorWords = 0;
};

} // namespace tfgc

#endif // TFGC_RUNTIME_HEAP_H
