//===- ir/Ir.cpp ----------------------------------------------------------===//

#include "ir/Ir.h"

#include <sstream>

using namespace tfgc;

bool Instr::hasDst() const {
  switch (Op) {
  case Opcode::Print:
  case Opcode::SetClosureField:
  case Opcode::RefStore:
  case Opcode::Jump:
  case Opcode::Branch:
  case Opcode::Return:
  case Opcode::Abort:
    return false;
  default:
    return true;
  }
}

FuncId tfgc::findFunction(const IrProgram &P, const std::string &Name) {
  for (const IrFunction &F : P.Functions)
    if (F.Name == Name)
      return F.Id;
  return InvalidFunc;
}

static const char *opcodeName(Opcode Op) {
  switch (Op) {
  case Opcode::LoadInt:         return "load.int";
  case Opcode::LoadFloat:       return "load.float";
  case Opcode::LoadBool:        return "load.bool";
  case Opcode::LoadUnit:        return "load.unit";
  case Opcode::Move:            return "move";
  case Opcode::Prim:            return "prim";
  case Opcode::Print:           return "print";
  case Opcode::MakeTuple:       return "make.tuple";
  case Opcode::MakeData:        return "make.data";
  case Opcode::MakeClosure:     return "make.closure";
  case Opcode::MakeRef:         return "make.ref";
  case Opcode::GetField:        return "get.field";
  case Opcode::GetTag:          return "get.tag";
  case Opcode::SetClosureField: return "set.closure.field";
  case Opcode::RefLoad:         return "ref.load";
  case Opcode::RefStore:        return "ref.store";
  case Opcode::Jump:            return "jump";
  case Opcode::Branch:          return "branch";
  case Opcode::Call:            return "call";
  case Opcode::CallIndirect:    return "call.indirect";
  case Opcode::Return:          return "return";
  case Opcode::Abort:           return "abort";
  }
  return "?";
}

static const char *primName(PrimVal P) {
  switch (P) {
  case PrimVal::Add: return "add";
  case PrimVal::Sub: return "sub";
  case PrimVal::Mul: return "mul";
  case PrimVal::Div: return "div";
  case PrimVal::Mod: return "mod";
  case PrimVal::Neg: return "neg";
  case PrimVal::Lt:  return "lt";
  case PrimVal::Le:  return "le";
  case PrimVal::Gt:  return "gt";
  case PrimVal::Ge:  return "ge";
  case PrimVal::Eq:  return "eq";
  case PrimVal::Ne:  return "ne";
  case PrimVal::Not: return "not";
  case PrimVal::FAdd: return "fadd";
  case PrimVal::FSub: return "fsub";
  case PrimVal::FMul: return "fmul";
  case PrimVal::FDiv: return "fdiv";
  case PrimVal::FNeg: return "fneg";
  case PrimVal::FLt:  return "flt";
  case PrimVal::FEq:  return "feq";
  case PrimVal::IntToFloat: return "itof";
  }
  return "?";
}

std::string tfgc::printFunction(const IrProgram &P, const IrFunction &F) {
  std::ostringstream OS;
  TypeContext &Ctx = *P.Types;
  OS << "fn " << F.Id << " " << F.Name;
  if (F.IsClosure)
    OS << " [closure]";
  if (!F.TypeParams.empty()) {
    OS << " <";
    for (size_t I = 0; I < F.TypeParams.size(); ++I)
      OS << (I ? ", " : "") << Ctx.render(F.TypeParams[I]);
    OS << ">";
  }
  OS << " params=" << F.NumParams << " slots=" << F.numSlots() << "\n";
  for (unsigned I = 0; I < F.numSlots(); ++I)
    OS << "  s" << I << " : " << Ctx.render(F.SlotTypes[I]) << "\n";

  // Labels by target instruction.
  std::vector<std::vector<LabelId>> LabelsAt(F.Code.size() + 1);
  for (LabelId L = 0; L < F.LabelTargets.size(); ++L)
    LabelsAt[F.LabelTargets[L]].push_back(L);

  for (size_t Idx = 0; Idx < F.Code.size(); ++Idx) {
    for (LabelId L : LabelsAt[Idx])
      OS << " L" << L << ":\n";
    const Instr &I = F.Code[Idx];
    OS << "  " << Idx << ": " << opcodeName(I.Op);
    if (I.Op == Opcode::Prim)
      OS << '.' << primName(I.Prim);
    if (I.hasDst())
      OS << " s" << I.Dst << " <-";
    for (SlotIndex S : I.Srcs)
      OS << " s" << S;
    switch (I.Op) {
    case Opcode::LoadInt:
    case Opcode::LoadBool:
      OS << " #" << I.IntImm;
      break;
    case Opcode::LoadFloat:
      OS << " #" << I.FloatImm;
      break;
    case Opcode::MakeData:
      OS << " ctor=" << I.Data->Ctors[I.CtorIdx].Name;
      break;
    case Opcode::MakeClosure:
      OS << " fn=" << P.fn(I.Callee).Name;
      break;
    case Opcode::GetField:
    case Opcode::SetClosureField:
      OS << " field=" << I.FieldIdx;
      break;
    case Opcode::Jump:
      OS << " L" << I.Label;
      break;
    case Opcode::Branch:
      OS << " L" << I.Label << " L" << I.Label2;
      break;
    case Opcode::Call:
      OS << " fn=" << P.fn(I.Callee).Name;
      break;
    default:
      break;
    }
    if (I.Site != InvalidSite)
      OS << " site=" << I.Site;
    OS << "\n";
  }
  for (LabelId L : LabelsAt[F.Code.size()])
    OS << " L" << L << ":\n";
  return OS.str();
}

std::string tfgc::printIr(const IrProgram &P) {
  std::ostringstream OS;
  for (const IrFunction &F : P.Functions)
    OS << printFunction(P, F) << "\n";
  OS << "main = fn " << P.MainId << "\n";
  OS << "sites: " << P.Sites.size() << "\n";
  return OS.str();
}
