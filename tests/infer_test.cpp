//===- tests/infer_test.cpp -----------------------------------------------===//

#include "TestUtil.h"

using namespace tfgc;
using namespace tfgc::test;

namespace {

/// Type checks and returns the rendered type of the main expression, or
/// "<error: ...>" on failure.
std::string typeOf(const std::string &Source, bool Mono = false) {
  DiagnosticEngine Diags;
  Lexer Lex(Source, Diags);
  Parser P(Lex.tokenize(), Diags);
  std::optional<Program> Ast = P.parseProgram();
  if (!Ast)
    return "<error: " + Diags.render() + ">";
  TypeContext Ctx;
  TypeChecker Checker(Ctx, Diags, Mono);
  if (!Checker.check(*Ast))
    return "<error: " + Diags.render() + ">";
  return Ctx.render(Ast->Main->Ty);
}

bool typeErrors(const std::string &Source, const std::string &Needle = "",
                bool Mono = false) {
  std::string T = typeOf(Source, Mono);
  if (T.substr(0, 7) != "<error:")
    return false;
  return Needle.empty() || T.find(Needle) != std::string::npos;
}

TEST(Infer, Literals) {
  EXPECT_EQ(typeOf("42"), "int");
  EXPECT_EQ(typeOf("3.14"), "float");
  EXPECT_EQ(typeOf("true"), "bool");
  EXPECT_EQ(typeOf("()"), "unit");
}

TEST(Infer, Arithmetic) {
  EXPECT_EQ(typeOf("1 + 2 * 3"), "int");
  EXPECT_EQ(typeOf("1.0 +. 2.0"), "float");
  EXPECT_EQ(typeOf("1 < 2"), "bool");
  EXPECT_EQ(typeOf("1.5 <. 2.5"), "bool");
}

TEST(Infer, MixedArithmeticFails) {
  EXPECT_TRUE(typeErrors("1 + 2.0", "type mismatch"));
  EXPECT_TRUE(typeErrors("1.0 + 2.0"));
  EXPECT_TRUE(typeErrors("1 +. 2"));
}

TEST(Infer, RealConversion) {
  EXPECT_EQ(typeOf("real 3"), "float");
  EXPECT_EQ(typeOf("real 3 +. 1.0"), "float");
}

TEST(Infer, Lists) {
  EXPECT_EQ(typeOf("[1, 2, 3]"), "(int) list");
  EXPECT_EQ(typeOf("true :: []"), "(bool) list");
  EXPECT_EQ(typeOf("[[1], [2]]"), "((int) list) list");
  EXPECT_TRUE(typeErrors("[1, true]"));
}

TEST(Infer, EmptyListDefaultsToUnit) {
  // A lone Nil has no constraint; the finalize pass grounds it.
  EXPECT_EQ(typeOf("[]"), "(unit) list");
}

TEST(Infer, Tuples) {
  EXPECT_EQ(typeOf("(1, true, 2.0)"), "(int * bool * float)");
}

TEST(Infer, IfBranchesMustAgree) {
  EXPECT_EQ(typeOf("if true then 1 else 2"), "int");
  EXPECT_TRUE(typeErrors("if true then 1 else false", "between if branches"));
  EXPECT_TRUE(typeErrors("if 1 then 2 else 3", "in if condition"));
}

TEST(Infer, MonomorphicFunction) {
  EXPECT_EQ(typeOf("fun inc (x : int) : int = x + 1; inc 3"), "int");
}

TEST(Infer, PolymorphicIdentity) {
  EXPECT_EQ(typeOf("fun id x = x; (id 1, id true)"), "(int * bool)");
}

TEST(Infer, PolymorphicAppend) {
  std::string Src = "fun append xs ys = case xs of Nil => ys "
                    "| Cons(x, r) => x :: append r ys;"
                    "(append [1] [2], append [true] [])";
  EXPECT_EQ(typeOf(Src), "((int) list * (bool) list)");
}

TEST(Infer, MonomorphicModeRejectsPolymorphism) {
  EXPECT_TRUE(typeErrors("fun id x = x; id 1", "polymorphic", /*Mono=*/true));
  EXPECT_EQ(typeOf("fun inc (x : int) = x + 1; inc 1", /*Mono=*/true), "int");
}

TEST(Infer, UnboundVariable) {
  EXPECT_TRUE(typeErrors("nope", "unbound variable 'nope'"));
}

TEST(Infer, ArityMismatch) {
  EXPECT_TRUE(typeErrors("fun f (x : int) (y : int) = x + y; f 1",
                         "uncurried"));
  EXPECT_TRUE(typeErrors("fun f (x : int) = x; f 1 2"));
}

TEST(Infer, OccursCheck) {
  EXPECT_TRUE(typeErrors("fun f x = f; f 1"));
}

TEST(Infer, Datatypes) {
  std::string D = "datatype shape = Point | Circle of float;";
  EXPECT_EQ(typeOf(D + "Circle 1.0"), "shape");
  EXPECT_EQ(typeOf(D + "Point"), "shape");
  EXPECT_TRUE(typeErrors(D + "Circle true"));
  EXPECT_TRUE(typeErrors(D + "Circle (1.0, 2.0)", "expects 1"));
}

TEST(Infer, ParameterizedDatatype) {
  std::string D = "datatype ('a, 'b) pair2 = P of 'a * 'b;";
  EXPECT_EQ(typeOf(D + "P (1, true)"), "(int, bool) pair2");
}

TEST(Infer, RecursiveDatatype) {
  std::string D = "datatype tree = Leaf | Node of tree * int * tree;";
  EXPECT_EQ(typeOf(D + "Node(Leaf, 3, Node(Leaf, 4, Leaf))"), "tree");
}

TEST(Infer, CasePatternTyping) {
  EXPECT_EQ(typeOf("case [1] of Nil => 0 | Cons(x, _) => x"), "int");
  EXPECT_TRUE(typeErrors("case [1] of Nil => 0 | Cons(x, _) => true"));
  EXPECT_TRUE(typeErrors("case 1 of Nil => 0 | _ => 1"));
}

TEST(Infer, DuplicatePatternVariable) {
  EXPECT_TRUE(typeErrors("case (1, 2) of (x, x) => x", "duplicate variable"));
}

TEST(Infer, UnknownConstructor) {
  EXPECT_TRUE(typeErrors("Bogus 3", "unknown constructor"));
}

TEST(Infer, Refs) {
  EXPECT_EQ(typeOf("ref 1"), "int ref");
  EXPECT_EQ(typeOf("!(ref 1)"), "int");
  EXPECT_EQ(typeOf("let val r = ref 1 in r := 2 end"), "unit");
  EXPECT_TRUE(typeErrors("let val r = ref 1 in r := true end"));
}

TEST(Infer, ValBindingsAreMonomorphic) {
  // `val` never generalizes, so one use at int pins the other.
  EXPECT_TRUE(typeErrors(
      "fun id x = x; val i = id; (i 1, i true)"));
}

TEST(Infer, AnnotationChecks) {
  EXPECT_EQ(typeOf("(1 : int)"), "int");
  EXPECT_TRUE(typeErrors("(1 : bool)", "with type annotation"));
  EXPECT_EQ(typeOf("([] : int list)"), "(int) list");
}

TEST(Infer, AnnotationTyVarsShareScopePerDecl) {
  EXPECT_EQ(
      typeOf("fun fst ((x : 'a), (y : 'b)) : 'a = x; fst (1, true)"), "int");
}

TEST(Infer, LambdaIsMonomorphic) {
  EXPECT_EQ(typeOf("(fn x => x + 1) 3"), "int");
}

TEST(Infer, HigherOrder) {
  std::string Src = "fun map f xs = case xs of Nil => Nil "
                    "| Cons(x, r) => Cons(f x, map f r);"
                    "map (fn x => x * 2) [1, 2]";
  EXPECT_EQ(typeOf(Src), "(int) list");
}

TEST(Infer, PrintTyping) {
  EXPECT_EQ(typeOf("print 3"), "unit");
  EXPECT_TRUE(typeErrors("print true"));
}

TEST(Infer, RedeclaredDatatype) {
  EXPECT_TRUE(typeErrors("datatype t = A; datatype t = B; 1", "redeclared"));
}

TEST(Infer, ShadowingWorks) {
  EXPECT_EQ(typeOf("let val x = 1 in let val x = true in x end end"),
            "bool");
}

} // namespace
