//===- support/Epoch.h - Safepoint epoch aggregation ------------*- C++ -*-===//
///
/// \file
/// The consistency layer between the per-task StatsShard domains and every
/// observability sink. Shards are written with plain unsynchronized stores
/// on the mutator hot path; they are only ever *read as a set* here, at
/// safepoints — collection boundaries, monitor heartbeats, and run end —
/// where all mutators are stopped (today: cooperatively quiescent). Each
/// fold produces an EpochSnapshot: a sequence-numbered, timestamped,
/// immutable map of folded counters. Sinks (the introspection server,
/// --metrics-out, tests) consume snapshots, never live shards, so a
/// /metrics scrape can never observe a torn cross-counter state like
/// "gc.collections advanced but gc.pause_ns_total not yet".
///
/// The aggregator also renders the Prometheus text exposition of the
/// latest epoch and pushes prebuilt response bodies (metrics, heap
/// snapshot JSON, latest heartbeat) into an attached IntrospectServer.
///
//===----------------------------------------------------------------------===//

#ifndef TFGC_SUPPORT_EPOCH_H
#define TFGC_SUPPORT_EPOCH_H

#include "support/Stats.h"

#include <chrono>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <string>

namespace tfgc {

class IntrospectServer;

/// Why a fold happened. Startup is the trivial epoch before any mutator
/// runs (so /metrics never 503s); Collection folds happen inside the
/// world-stopped pause (after the collector publishes its
/// telemetry-derived stats); Heartbeat folds happen at monitor sample
/// points; RunEnd is the final fold after the VM flushes its counters.
enum class SafepointKind : uint8_t { Startup, Collection, Heartbeat, RunEnd };

const char *safepointKindName(SafepointKind K);

/// One folded, immutable view of every counter at a safepoint. The fixed
/// counters are kept as a folded value-shard (the fold inside a pause is
/// a plain array copy, no allocation); counters() materializes the
/// name-ordered map on demand — sinks call it off the pause path (the
/// /metrics render on the scraper's thread, --metrics-out at run end).
struct EpochSnapshot {
  uint64_t Seq = 0;
  uint64_t WhenNs = 0;
  SafepointKind Reason = SafepointKind::Collection;
  StatsShard Folded;
  std::map<std::string, uint64_t> Dynamic;

  /// Every touched counter, name-ordered — identical to what Stats::all()
  /// returned at the fold.
  std::map<std::string, uint64_t> counters() const;
};

class EpochAggregator {
public:
  EpochAggregator() : Start(std::chrono::steady_clock::now()) {}

  void attachStats(Stats *S) { St = S; }
  void attachServer(IntrospectServer *Srv) { Server = Srv; }
  /// Provider for the /snapshot body (schema-1 heap-profile JSON),
  /// invoked inside the fold (i.e. at the safepoint) so the served
  /// snapshot is epoch-coherent with /metrics.
  void setSnapshotProvider(std::function<std::string()> P) {
    SnapshotProvider = std::move(P);
  }
  /// Label rendered into the tfgc_info metric (strategy/algorithm).
  void setLabel(const std::string &L) { Label = L; }

  /// Folds all shards into a new epoch. Must be called at a safepoint;
  /// takes a Stats::SafepointScope for the duration (dynamic-name
  /// publishes from inside the fold are legal). Publishes the epoch to an
  /// attached server: /metrics is handed over as a *deferred* render of
  /// the immutable snapshot, so the (allocation-heavy) text exposition is
  /// built on the scraper's thread at first GET, never inside the pause.
  /// The /snapshot provider still runs eagerly (non-heartbeat folds): the
  /// heap profile must be read at the safepoint, it cannot be deferred.
  const EpochSnapshot &fold(SafepointKind Kind);

  /// Records the latest monitor heartbeat line and forwards it to the
  /// server's /heartbeat. Called by the Monitor right after it emits the
  /// record, at the same sample point its Heartbeat fold runs.
  void noteHeartbeat(const std::string &JsonLine);

  uint64_t epochCount() const { return NextSeq; }
  bool hasEpoch() const { return NextSeq > 0; }
  const EpochSnapshot &latest() const;
  /// Up to HistoryCap most recent snapshots, oldest first (test hook for
  /// cross-epoch consistency; /metrics only ever serves the latest).
  /// Snapshots are immutable once folded — shared_ptr elements so a
  /// deferred /metrics render can outlive this ring without a deep copy.
  const std::deque<std::shared_ptr<const EpochSnapshot>> &history() const {
    return History;
  }

  /// Prometheus text exposition (version 0.0.4) of the latest epoch.
  std::string renderPrometheus() const;
  /// Same, for an arbitrary snapshot (what the deferred render runs).
  static std::string renderPrometheusFor(const EpochSnapshot &E,
                                         const std::string &Label);

  static constexpr size_t HistoryCap = 64;

private:
  uint64_t nowNs() const;

  Stats *St = nullptr;
  IntrospectServer *Server = nullptr;
  std::function<std::string()> SnapshotProvider;
  std::string Label;
  std::chrono::steady_clock::time_point Start;
  uint64_t NextSeq = 0;
  std::deque<std::shared_ptr<const EpochSnapshot>> History;
};

} // namespace tfgc

#endif // TFGC_SUPPORT_EPOCH_H
