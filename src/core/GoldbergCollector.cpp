//===- core/GoldbergCollector.cpp -----------------------------------------===//

#include "core/GoldbergCollector.h"

#include <cassert>

using namespace tfgc;

GoldbergCollector::GoldbergCollector(TraceMethod Method, GcAlgorithm Algo,
                                     size_t HeapBytes, Stats &St,
                                     const IrProgram &Prog,
                                     const CodeImage &Img, TypeContext &Types,
                                     const CompiledMetadata *CM,
                                     InterpretedMetadata *IM,
                                     bool GlogerDummies, size_t NurseryBytes)
    : Collector(ValueModel::TagFree, Algo, HeapBytes, St, NurseryBytes),
      Method(Method), Prog(Prog), Img(Img), Types(Types), CM(CM), IM(IM),
      GlogerDummies(GlogerDummies), Eng(Types, St, &Tel) {
  assert(Method != TraceMethod::Appel && "use AppelCollector");
  assert((Method == TraceMethod::Compiled ? CM != nullptr : IM != nullptr) &&
         "metadata missing for the selected method");
}

const std::vector<ClosureParamPath> &
GoldbergCollector::paramPaths(FuncId Fn) const {
  return Method == TraceMethod::Compiled
             ? CM->closureRoutine(Fn).ParamPaths
             : IM->closureDescriptor(Fn).ParamPaths;
}

void GoldbergCollector::traceRemset(Space &Sp) {
  if (remset().empty())
    return;
  // Each remembered slot carries the stored value's static type (recorded
  // by the write barrier; only ground types reach the buffer), so it can
  // be retraced standalone: evaluate the type into a GC routine closure
  // and run it. No Eng.reset() here — this runs inside a collection,
  // after traceRoots, and must share its closure arena.
  TagFreeTracer Tr(Prog, Img, Eng, Sp, St, Method, CM, IM, nullptr,
                   GlogerDummies, &Tel, Prof);
  TgEnv Env; // Ground types have no type parameters to bind.
  for (const RemsetEntry &E : remset()) {
    St.add(StatId::GcSlotsTraced);
    *E.Slot = Tr.traceTg(*E.Slot, Eng.eval(E.Ty, Env));
  }
}

void GoldbergCollector::traceOneStack(TaskStack &Stack, TagFreeTracer &Tr,
                                      TypeGcEngine &E, Stats &S,
                                      Telemetry *T) {
  if (Stack.Frames.empty())
    return;

  // Pass 1 (paper section 3): reverse the dynamic links so the stack can
  // be walked from the oldest activation record to the newest. We
  // materialize the reversed chain as an index list; each hop is one
  // pointer reversal.
  std::vector<uint32_t> Order;
  {
    PhaseScope Span(T, GcPhase::PtrReversal);
    uint32_t F = (uint32_t)(Stack.Frames.size() - 1);
    while (F != NoFrame) {
      Order.push_back(F);
      S.add(StatId::GcPtrReversalSteps);
      F = Stack.Frames[F].DynamicLink;
    }
  }

  // Pass 2: oldest to newest, threading type GC routine bindings from
  // each frame's pending call site to the next frame.
  PhaseScope Span(T, GcPhase::FrameDispatch);
  std::vector<const TypeGc *> Binds;
  for (size_t K = Order.size(); K-- > 0;) {
    FrameInfo &Fr = Stack.Frames[Order[K]];
    const IrFunction &Fn = Prog.fn(Fr.FuncId);
    assert(Binds.size() == Fn.TypeParams.size() &&
           "binding/parameter mismatch");

    assert(Fr.PendingSiteAddr != NoSiteAddr &&
           "suspended frame without a pending site");
    Word GcWord = Img.gcWordAt(Fr.PendingSiteAddr);
    assert(GcWord != CodeImage::OmittedGcWord &&
           "collection at a site the GC-point analysis ruled out");
    CallSiteId Site = (CallSiteId)GcWord;

    S.add(StatId::GcFramesTraced);
    TgEnv Env;
    Env.Params = &Fn.TypeParams;
    Env.Binds = Binds.data();
    Word *Slots = Stack.frameSlots(Fr);
    if (Method == TraceMethod::Compiled)
      Tr.traceFrame(Slots, CM->siteRoutine(Site), &Env);
    else
      Tr.traceFrame(Slots, IM->siteDescriptor(Site), &Env);

    if (K == 0)
      break; // Newest frame: nobody above.

    // Hand the callee its type parameter routines (the f_frame_gc ->
    // next_gc(...) call of the paper).
    const CallSiteInfo &CS = Prog.site(Site);
    const IrFunction &Callee = Prog.fn(Stack.Frames[Order[K - 1]].FuncId);
    std::vector<const TypeGc *> Next;
    switch (CS.Kind) {
    case SiteKind::Direct: {
      assert(CS.Callee == Stack.Frames[Order[K - 1]].FuncId);
      for (Type *Ty : CS.CalleeTypeInst)
        Next.push_back(E.eval(Ty, Env));
      break;
    }
    case SiteKind::Indirect: {
      if (!Callee.TypeParams.empty()) {
        const TypeGc *FunTg = E.eval(CS.ClosureTy, Env);
        for (const ClosureParamPath &P : paramPaths(Callee.Id))
          Next.push_back(Tr.bindParam(P, FunTg));
      }
      break;
    }
    case SiteKind::Alloc:
      assert(false && "allocation site cannot have a callee frame");
      break;
    }
    Binds = std::move(Next);
  }
}

void GoldbergCollector::traceRoots(RootSet &Roots, Space &Sp) {
  Eng.reset();

  // Parallel path: each worker builds a private engine + tracer per stack
  // job, so only the heap's claim/publish words are shared. The member
  // engine stays valid (reset above) for the serial remset scan that may
  // follow inside this same collection.
  if (traceStacksParallel(
          Roots, Sp,
          [this](TaskStack &Stack, Space &WSp, Stats &WSt,
                 CensusCounts &WCensus) {
            TypeGcEngine WEng(Types, WSt, nullptr);
            TagFreeTracer Tr(Prog, Img, WEng, WSp, WSt, Method, CM, IM,
                             nullptr, GlogerDummies, nullptr, nullptr);
            Tr.setCensusSink(&WCensus);
            traceOneStack(Stack, Tr, WEng, WSt, nullptr);
          }))
    return;

  TagFreeTracer Tr(Prog, Img, Eng, Sp, St, Method, CM, IM, nullptr,
                   GlogerDummies, &Tel, Prof);
  for (TaskStack *Stack : Roots.Stacks)
    traceOneStack(*Stack, Tr, Eng, St, &Tel);
}
