file(REMOVE_RECURSE
  "CMakeFiles/tfgc_analysis.dir/Cfg.cpp.o"
  "CMakeFiles/tfgc_analysis.dir/Cfg.cpp.o.d"
  "CMakeFiles/tfgc_analysis.dir/GcPoints.cpp.o"
  "CMakeFiles/tfgc_analysis.dir/GcPoints.cpp.o.d"
  "CMakeFiles/tfgc_analysis.dir/Liveness.cpp.o"
  "CMakeFiles/tfgc_analysis.dir/Liveness.cpp.o.d"
  "CMakeFiles/tfgc_analysis.dir/Reconstruct.cpp.o"
  "CMakeFiles/tfgc_analysis.dir/Reconstruct.cpp.o.d"
  "libtfgc_analysis.a"
  "libtfgc_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tfgc_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
