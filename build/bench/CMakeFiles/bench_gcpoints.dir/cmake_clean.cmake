file(REMOVE_RECURSE
  "CMakeFiles/bench_gcpoints.dir/bench_gcpoints.cpp.o"
  "CMakeFiles/bench_gcpoints.dir/bench_gcpoints.cpp.o.d"
  "bench_gcpoints"
  "bench_gcpoints.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_gcpoints.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
