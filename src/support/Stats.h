//===- support/Stats.h - Named statistic counters ---------------*- C++ -*-===//
///
/// \file
/// A registry of named counters. The collectors and the tasking runtime
/// record everything the experiments need (pause times, bytes copied,
/// chain-walk counts, suspension checks) here, keyed by stable names so the
/// bench harnesses can print paper-style tables.
///
//===----------------------------------------------------------------------===//

#ifndef TFGC_SUPPORT_STATS_H
#define TFGC_SUPPORT_STATS_H

#include <cstdint>
#include <map>
#include <string>

namespace tfgc {

/// Ordered map of counter name to value. Ordered so table output is stable.
class Stats {
public:
  void add(const std::string &Name, uint64_t Delta = 1) {
    Counters[Name] += Delta;
  }
  void set(const std::string &Name, uint64_t Value) { Counters[Name] = Value; }
  void max(const std::string &Name, uint64_t Value) {
    uint64_t &Slot = Counters[Name];
    if (Value > Slot)
      Slot = Value;
  }

  uint64_t get(const std::string &Name) const {
    auto It = Counters.find(Name);
    return It == Counters.end() ? 0 : It->second;
  }

  bool has(const std::string &Name) const { return Counters.count(Name) != 0; }

  const std::map<std::string, uint64_t> &all() const { return Counters; }

  void clear() { Counters.clear(); }

  /// Renders "name = value" lines for human consumption.
  std::string render() const;

private:
  std::map<std::string, uint64_t> Counters;
};

} // namespace tfgc

#endif // TFGC_SUPPORT_STATS_H
