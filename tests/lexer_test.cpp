//===- tests/lexer_test.cpp -----------------------------------------------===//

#include "frontend/Lexer.h"

#include <gtest/gtest.h>

using namespace tfgc;

namespace {

std::vector<Token> lex(const std::string &Src, bool ExpectErrors = false) {
  DiagnosticEngine Diags;
  Lexer L(Src, Diags);
  std::vector<Token> Tokens = L.tokenize();
  EXPECT_EQ(Diags.hasErrors(), ExpectErrors) << Diags.render();
  return Tokens;
}

std::vector<TokenKind> kinds(const std::vector<Token> &Ts) {
  std::vector<TokenKind> Ks;
  for (const Token &T : Ts)
    Ks.push_back(T.Kind);
  return Ks;
}

TEST(Lexer, Empty) {
  auto Ts = lex("");
  ASSERT_EQ(Ts.size(), 1u);
  EXPECT_EQ(Ts[0].Kind, TokenKind::Eof);
}

TEST(Lexer, Integers) {
  auto Ts = lex("0 42 1234567890123");
  ASSERT_EQ(Ts.size(), 4u);
  EXPECT_EQ(Ts[0].IntValue, 0);
  EXPECT_EQ(Ts[1].IntValue, 42);
  EXPECT_EQ(Ts[2].IntValue, 1234567890123ll);
}

TEST(Lexer, Floats) {
  auto Ts = lex("3.14 1.0e3 2.5e-2");
  ASSERT_EQ(Ts.size(), 4u);
  EXPECT_EQ(Ts[0].Kind, TokenKind::FloatLit);
  EXPECT_DOUBLE_EQ(Ts[0].FloatValue, 3.14);
  EXPECT_DOUBLE_EQ(Ts[1].FloatValue, 1000.0);
  EXPECT_DOUBLE_EQ(Ts[2].FloatValue, 0.025);
}

TEST(Lexer, IntegerFollowedByIdent) {
  // "1e" with no exponent digits is the int 1 then identifier e.
  auto Ts = lex("1e");
  ASSERT_EQ(Ts.size(), 3u);
  EXPECT_EQ(Ts[0].Kind, TokenKind::IntLit);
  EXPECT_EQ(Ts[1].Kind, TokenKind::Ident);
  EXPECT_EQ(Ts[1].Text, "e");
}

TEST(Lexer, IdentifiersAndCase) {
  auto Ts = lex("append Cons xs' x_1");
  EXPECT_EQ(Ts[0].Kind, TokenKind::Ident);
  EXPECT_EQ(Ts[1].Kind, TokenKind::CapIdent);
  EXPECT_EQ(Ts[1].Text, "Cons");
  EXPECT_EQ(Ts[2].Text, "xs'");
  EXPECT_EQ(Ts[3].Text, "x_1");
}

TEST(Lexer, Keywords) {
  auto Ts = lex("let in end fun val if then else case of fn datatype");
  std::vector<TokenKind> Expect = {
      TokenKind::KwLet,  TokenKind::KwIn,   TokenKind::KwEnd,
      TokenKind::KwFun,  TokenKind::KwVal,  TokenKind::KwIf,
      TokenKind::KwThen, TokenKind::KwElse, TokenKind::KwCase,
      TokenKind::KwOf,   TokenKind::KwFn,   TokenKind::KwDatatype,
      TokenKind::Eof};
  EXPECT_EQ(kinds(Ts), Expect);
}

TEST(Lexer, TyVars) {
  auto Ts = lex("'a 'elem");
  EXPECT_EQ(Ts[0].Kind, TokenKind::TyVar);
  EXPECT_EQ(Ts[0].Text, "a");
  EXPECT_EQ(Ts[1].Text, "elem");
}

TEST(Lexer, Operators) {
  auto Ts = lex(":= :: : -> => = <> <= >= < > + - * / +. -. *. /. <. =. ! ~");
  std::vector<TokenKind> Expect = {
      TokenKind::Assign,    TokenKind::ColonColon, TokenKind::Colon,
      TokenKind::Arrow,     TokenKind::DArrow,     TokenKind::Equal,
      TokenKind::NotEqual,  TokenKind::LessEq,     TokenKind::GreaterEq,
      TokenKind::Less,      TokenKind::Greater,    TokenKind::Plus,
      TokenKind::Minus,     TokenKind::Star,       TokenKind::Slash,
      TokenKind::FPlus,     TokenKind::FMinus,     TokenKind::FStar,
      TokenKind::FSlash,    TokenKind::FLess,      TokenKind::FEqual,
      TokenKind::Bang,      TokenKind::Tilde,      TokenKind::Eof};
  EXPECT_EQ(kinds(Ts), Expect);
}

TEST(Lexer, Comments) {
  auto Ts = lex("1 (* comment *) 2");
  ASSERT_EQ(Ts.size(), 3u);
  EXPECT_EQ(Ts[1].IntValue, 2);
}

TEST(Lexer, NestedComments) {
  auto Ts = lex("1 (* outer (* inner *) still outer *) 2");
  ASSERT_EQ(Ts.size(), 3u);
  EXPECT_EQ(Ts[1].IntValue, 2);
}

TEST(Lexer, UnterminatedComment) {
  lex("1 (* never closed", /*ExpectErrors=*/true);
}

TEST(Lexer, UnexpectedCharacter) {
  auto Ts = lex("1 @ 2", /*ExpectErrors=*/true);
  EXPECT_EQ(Ts[1].Kind, TokenKind::Error);
}

TEST(Lexer, SourceLocations) {
  auto Ts = lex("a\n  bb\n   c");
  EXPECT_EQ(Ts[0].Loc.Line, 1u);
  EXPECT_EQ(Ts[0].Loc.Col, 1u);
  EXPECT_EQ(Ts[1].Loc.Line, 2u);
  EXPECT_EQ(Ts[1].Loc.Col, 3u);
  EXPECT_EQ(Ts[2].Loc.Line, 3u);
  EXPECT_EQ(Ts[2].Loc.Col, 4u);
}

TEST(Lexer, ListSugarTokens) {
  auto Ts = lex("[1, 2]");
  std::vector<TokenKind> Expect = {TokenKind::LBracket, TokenKind::IntLit,
                                   TokenKind::Comma, TokenKind::IntLit,
                                   TokenKind::RBracket, TokenKind::Eof};
  EXPECT_EQ(kinds(Ts), Expect);
}

TEST(Lexer, UnderscoreIsWildcard) {
  auto Ts = lex("_ _x");
  EXPECT_EQ(Ts[0].Kind, TokenKind::Underscore);
  // "_x" lexes as underscore then identifier? No: '_' starts a token of
  // its own only when isolated; identifiers cannot start with '_'.
  EXPECT_EQ(Ts[1].Kind, TokenKind::Underscore);
  EXPECT_EQ(Ts[2].Kind, TokenKind::Ident);
}

} // namespace
