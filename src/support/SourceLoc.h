//===- support/SourceLoc.h - Source positions -------------------*- C++ -*-===//
///
/// \file
/// Lightweight source locations used by the MiniML front end and the
/// diagnostics engine.
///
//===----------------------------------------------------------------------===//

#ifndef TFGC_SUPPORT_SOURCELOC_H
#define TFGC_SUPPORT_SOURCELOC_H

#include <cstdint>

namespace tfgc {

/// A position in a MiniML source buffer. Line and column are 1-based;
/// a default-constructed location (line 0) means "unknown".
struct SourceLoc {
  uint32_t Line = 0;
  uint32_t Col = 0;

  constexpr SourceLoc() = default;
  constexpr SourceLoc(uint32_t Line, uint32_t Col) : Line(Line), Col(Col) {}

  bool isValid() const { return Line != 0; }

  friend bool operator==(const SourceLoc &A, const SourceLoc &B) {
    return A.Line == B.Line && A.Col == B.Col;
  }
};

} // namespace tfgc

#endif // TFGC_SUPPORT_SOURCELOC_H
