//===- bench/bench_pause.cpp - E3: collection pause per strategy ---------===//
///
/// The experiment the paper explicitly leaves open (section 2.4): "What
/// the precise space/time trade-off is [between the compiled and the
/// interpreted method] remains to be seen from experiments". This bench
/// fixes the heap size so every strategy collects the same live data and
/// reports pause times and per-strategy work counters for the compiled
/// method, the interpreted method, Appel's scheme, and the tagged
/// baseline, under both copying and mark-sweep collection.
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

using namespace tfgc;
using namespace tfgc::bench;
namespace wl = tfgc::workloads;

namespace {

const GcStrategy Strategies[] = {
    GcStrategy::Tagged,
    GcStrategy::CompiledTagFree,
    GcStrategy::InterpretedTagFree,
    GcStrategy::AppelTagFree,
};

void report(const char *Name, const std::string &Src, size_t HeapBytes,
            GcAlgorithm A) {
  jsonWorkload(Name);
  for (GcStrategy S : Strategies) {
    Stats St = runOnce(Src, S, A, HeapBytes);
    uint64_t N = St.get(StatId::GcCollections);
    tableCell(Name);
    tableCell(std::string(gcStrategyName(S)) +
              (A == GcAlgorithm::Copying ? "/copy" : "/ms"));
    tableCell(N);
    tableCell(N ? (double)St.get(StatId::GcPauseNsTotal) / (double)N / 1000.0
                : 0.0);
    tableCell((double)St.get(StatId::GcPauseNsP50) / 1000.0);
    tableCell((double)St.get(StatId::GcPauseNsP90) / 1000.0);
    tableCell((double)St.get(StatId::GcPauseNsP99) / 1000.0);
    tableCell((double)St.get(StatId::GcPauseNsMax) / 1000.0);
    tableCell(St.get(StatId::GcObjectsVisited));
    tableCell(St.get(StatId::GcCompiledActions) + St.get(StatId::GcDescSteps));
    tableEnd();
  }
}

std::unique_ptr<CompiledProgram> &churn() {
  static auto P = compileOrDie(wl::listChurn(200, 64));
  return P;
}
std::unique_ptr<CompiledProgram> &trees() {
  static auto P = compileOrDie(wl::binaryTrees(9, 8));
  return P;
}

void BM_Churn(benchmark::State &State, GcStrategy S, GcAlgorithm A) {
  timedRun(State, *churn(), S, A, 1 << 14);
}
void BM_Trees(benchmark::State &State, GcStrategy S, GcAlgorithm A) {
  timedRun(State, *trees(), S, A, 1 << 16);
}

BENCHMARK_CAPTURE(BM_Churn, tagged_copy, GcStrategy::Tagged,
                  GcAlgorithm::Copying);
BENCHMARK_CAPTURE(BM_Churn, compiled_copy, GcStrategy::CompiledTagFree,
                  GcAlgorithm::Copying);
BENCHMARK_CAPTURE(BM_Churn, interpreted_copy, GcStrategy::InterpretedTagFree,
                  GcAlgorithm::Copying);
BENCHMARK_CAPTURE(BM_Churn, appel_copy, GcStrategy::AppelTagFree,
                  GcAlgorithm::Copying);
BENCHMARK_CAPTURE(BM_Churn, compiled_marksweep, GcStrategy::CompiledTagFree,
                  GcAlgorithm::MarkSweep);
BENCHMARK_CAPTURE(BM_Trees, tagged_copy, GcStrategy::Tagged,
                  GcAlgorithm::Copying);
BENCHMARK_CAPTURE(BM_Trees, compiled_copy, GcStrategy::CompiledTagFree,
                  GcAlgorithm::Copying);
BENCHMARK_CAPTURE(BM_Trees, interpreted_copy, GcStrategy::InterpretedTagFree,
                  GcAlgorithm::Copying);
BENCHMARK_CAPTURE(BM_Trees, appel_copy, GcStrategy::AppelTagFree,
                  GcAlgorithm::Copying);

} // namespace

int main(int argc, char **argv) {
  JsonSink Sink("pause", argc, argv);
  tableHeader("E3: collection pause by strategy",
              "fixed heap; avg/percentile/max pause in microseconds "
              "(p50/p90/p99 from the telemetry pause histogram); 'trace "
              "work' = compiled actions + descriptor steps",
              {"workload", "strategy", "collections", "avg pause us",
               "p50 us", "p90 us", "p99 us", "max pause us", "objs visited",
               "trace work"});
  report("listChurn", wl::listChurn(200, 64), 1 << 16, GcAlgorithm::Copying);
  report("listChurn", wl::listChurn(200, 64), 1 << 16,
         GcAlgorithm::MarkSweep);
  report("binaryTrees", wl::binaryTrees(9, 8), 1 << 16,
         GcAlgorithm::Copying);
  report("symbolicDiff", wl::symbolicDiff(4), 4096,
         GcAlgorithm::Copying);
  std::printf(
      "\nExpected shape: compiled < interpreted on pause (descriptor "
      "interpretation does\nstrictly more steps per object); Appel visits "
      "more (all slots assumed live);\ntagged visits every frame slot and "
      "every payload word by tag.\n\n");
  benchmark::Initialize(&argc, argv);
  Sink.runBenchmarksAndWrite();
  return 0;
}
