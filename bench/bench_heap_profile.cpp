//===- bench/bench_heap_profile.cpp - E11: heap profiler cost ------------===//
///
/// What does tag-free heap profiling cost? The profiler rides machinery
/// the collector already runs — the type-reconstructing trace — so the
/// claim to verify is that attribution is nearly free:
///
///   off      profiler not attached: the mutator pays one null check per
///            allocation (the Vm::finishAlloc guard). Must be within
///            noise of a build without the profiler at all.
///   profile  allocation-site attribution + typed snapshot: a counter
///            bump and an (addr, site) log append per allocation, a
///            binary-search lookup per first visit during collections.
///   retain   profile + retention diagnostics: post-trace reference-graph
///            scan and dominator tree on every full/major collection —
///            the expensive tier, priced here so users know what
///            --retainers costs before turning it on in a tight loop.
///
/// Reports wall-clock medians and ratios for listChurn (allocation-heavy,
/// full copying) and generationalChurn (minor-dominated), plus the
/// profiler's own counters. The google-benchmark entries at the bottom
/// feed BENCH_heap_profile.json for the perf trajectory.
///
/// Acceptance line: profile/off ratio <= 1.05 on both workloads.
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include <algorithm>
#include <array>
#include <chrono>

using namespace tfgc;
using namespace tfgc::bench;
namespace wl = tfgc::workloads;

namespace {

constexpr size_t HeapBytes = 1 << 16;
constexpr size_t GenHeapBytes = 1 << 20;
constexpr size_t GenNurseryBytes = 1 << 13;

enum ProfileMode { Off = 0, Profile = 1, Retain = 2 };

const char *modeName(ProfileMode M) {
  return M == Off ? "off" : M == Profile ? "profile" : "retain";
}

/// One full compile-free run under \p Mode; returns stats, optionally the
/// wall time in nanoseconds.
Stats profiledRun(CompiledProgram &P, GcStrategy S, GcAlgorithm A,
                  size_t Heap, size_t Nursery, ProfileMode Mode,
                  uint64_t *WallNs = nullptr,
                  HeapProfiler *ProfOut = nullptr) {
  Stats St;
  std::string Err;
  auto Col = P.makeCollector(S, A, Heap, St, &Err, Nursery);
  if (!Col) {
    std::fprintf(stderr, "makeCollector failed: %s\n", Err.c_str());
    std::abort();
  }
  HeapProfiler Local;
  HeapProfiler &Prof = ProfOut ? *ProfOut : Local;
  if (Mode != Off) {
    attachHeapProfiler(P, S, *Col, Prof);
    if (Mode == Retain)
      Prof.setRetainers(10);
  }
  Vm M(P.Prog, P.Image, *P.Types, *Col, defaultVmOptions(S));
  auto T0 = std::chrono::steady_clock::now();
  RunResult R = M.run();
  auto T1 = std::chrono::steady_clock::now();
  if (!R.Ok) {
    std::fprintf(stderr, "bench run failed: %s\n", R.Error.c_str());
    std::abort();
  }
  if (WallNs)
    *WallNs =
        (uint64_t)std::chrono::duration_cast<std::chrono::nanoseconds>(T1 -
                                                                       T0)
            .count();
  // Counter runs (the ones whose profiler outlives the run) feed the JSON
  // trajectory; timing reps stay out of table_runs.
  if (ProfOut)
    if (JsonSink *Sink = JsonSink::active())
      Sink->record(
          (std::string(gcStrategyName(S)) + "+" + modeName(Mode)).c_str(),
          A, Heap, St, Nursery);
  return St;
}

/// Samples all three modes round-robin (after one untimed warmup) so page
/// cache, CPU frequency, and machine-load drift hit every mode equally
/// instead of penalizing whichever ran first.
std::array<uint64_t, 3> medianWallNs(CompiledProgram &P, GcStrategy S,
                                     GcAlgorithm A, size_t Heap,
                                     size_t Nursery, int Reps = 9) {
  profiledRun(P, S, A, Heap, Nursery, Off);
  std::array<std::vector<uint64_t>, 3> Ns;
  for (int I = 0; I < Reps; ++I)
    for (ProfileMode Mode : {Off, Profile, Retain}) {
      uint64_t W = 0;
      profiledRun(P, S, A, Heap, Nursery, Mode, &W);
      Ns[Mode].push_back(W);
    }
  std::array<uint64_t, 3> Med;
  for (int M = 0; M < 3; ++M) {
    std::sort(Ns[M].begin(), Ns[M].end());
    Med[M] = Ns[M][Ns[M].size() / 2];
  }
  return Med;
}

void reportCost() {
  struct Workload {
    const char *Name;
    std::string Src;
    GcAlgorithm Algo;
    size_t Heap, Nursery;
  } Workloads[] = {
      {"listChurn", wl::listChurn(200, 64), GcAlgorithm::Copying, HeapBytes,
       0},
      {"generationalChurn", wl::generationalChurn(20000, 30, 4000),
       GcAlgorithm::Generational, GenHeapBytes, GenNurseryBytes},
  };

  tableHeader("E11: heap profiler cost (compiled tag-free)",
              "wall-clock medians over 9 interleaved runs; 'ratio' is vs "
              "the profiler off; 'retain' adds dominator-tree retention on "
              "full/major collections",
              {"workload", "mode", "median ms", "ratio", "collections",
               "allocs tracked", "visits tracked"});
  bool Pass = true;
  for (Workload &W : Workloads) {
    jsonWorkload(W.Name);
    auto P = compileOrDie(W.Src);
    std::array<uint64_t, 3> Med = medianWallNs(
        *P, GcStrategy::CompiledTagFree, W.Algo, W.Heap, W.Nursery);
    for (ProfileMode Mode : {Off, Profile, Retain}) {
      double Ratio = Med[Off] ? (double)Med[Mode] / (double)Med[Off] : 0.0;
      HeapProfiler Prof;
      Stats St = profiledRun(*P, GcStrategy::CompiledTagFree, W.Algo,
                             W.Heap, W.Nursery, Mode, nullptr, &Prof);
      tableCell(W.Name);
      tableCell(modeName(Mode));
      tableCell((double)Med[Mode] / 1e6);
      tableCell(Ratio);
      tableCell(St.get(StatId::GcCollections));
      tableCell(Prof.allocTotal());
      tableCell(Prof.visitObjectsTotal());
      tableEnd();
      if (Mode == Profile && Ratio > 1.05)
        Pass = false;
    }
  }
  std::printf(
      "\nmutator-side acceptance is `off` vs a profiler-free build "
      "(identical code path\nbut one null check per allocation); "
      "profile/off <= 1.05 on both workloads: %s\n",
      Pass ? "PASS"
           : "not met this run — listChurn bounds the mutator-side cost, "
             "while\ngenerationalChurn is a GC-bound torture test (500+ "
             "collections) that prices\nthe per-visit attribution itself; "
             "see EXPERIMENTS.md E11 for the cost model");
}

void reportSnapshot() {
  // What a snapshot actually contains for a churn workload, and that its
  // invariants hold outside the test suite too.
  auto P = compileOrDie(wl::generationalChurn(20000, 30, 4000));
  HeapProfiler Prof;
  Stats St =
      profiledRun(*P, GcStrategy::CompiledTagFree, GcAlgorithm::Generational,
                  GenHeapBytes, GenNurseryBytes, Retain, nullptr, &Prof);
  const HeapProfiler::Snapshot &S = Prof.snapshot();
  std::printf("\nlast snapshot: seq=%llu kind=%s objects=%llu bytes=%llu "
              "(covered=%llu) retainers=%zu\n",
              (unsigned long long)S.Seq, gcEventKindName(S.Kind),
              (unsigned long long)S.Objects,
              (unsigned long long)(S.Words * sizeof(Word)),
              (unsigned long long)S.CoveredBytes, S.Retainers.size());
  if (S.Valid && S.kindBytes() != S.CoveredBytes) {
    std::fprintf(stderr, "snapshot invariant violated in bench run\n");
    std::abort();
  }
  (void)St;
}

std::unique_ptr<CompiledProgram> &churnList() {
  static auto P = compileOrDie(wl::listChurn(200, 64));
  return P;
}
std::unique_ptr<CompiledProgram> &churnGen() {
  static auto P = compileOrDie(wl::generationalChurn(20000, 30, 4000));
  return P;
}

void BM_ListChurn(benchmark::State &State, ProfileMode Mode) {
  for (auto _ : State) {
    uint64_t W = 0;
    Stats St = profiledRun(*churnList(), GcStrategy::CompiledTagFree,
                           GcAlgorithm::Copying, HeapBytes, 0, Mode, &W);
    State.counters["collections"] = (double)St.get(StatId::GcCollections);
    benchmark::DoNotOptimize(W);
  }
}

void BM_GenChurn(benchmark::State &State, ProfileMode Mode) {
  for (auto _ : State) {
    uint64_t W = 0;
    Stats St = profiledRun(*churnGen(), GcStrategy::CompiledTagFree,
                           GcAlgorithm::Generational, GenHeapBytes,
                           GenNurseryBytes, Mode, &W);
    State.counters["collections"] = (double)St.get(StatId::GcCollections);
    benchmark::DoNotOptimize(W);
  }
}

BENCHMARK_CAPTURE(BM_ListChurn, off, Off);
BENCHMARK_CAPTURE(BM_ListChurn, profile, Profile);
BENCHMARK_CAPTURE(BM_ListChurn, retain, Retain);
BENCHMARK_CAPTURE(BM_GenChurn, off, Off);
BENCHMARK_CAPTURE(BM_GenChurn, profile, Profile);
BENCHMARK_CAPTURE(BM_GenChurn, retain, Retain);

} // namespace

int main(int argc, char **argv) {
  JsonSink Sink("heap_profile", argc, argv);
  reportCost();
  reportSnapshot();
  std::printf(
      "\nExpected shape: 'profile' tracks 'off' within noise — the hot "
      "path adds a\ncounter bump and a vector append per allocation, and "
      "the per-visit site lookup\nruns inside a pause that already walks "
      "the object. 'retain' pays a visible\npremium per full/major "
      "collection for the dominator pass.\n\n");
  benchmark::Initialize(&argc, argv);
  Sink.runBenchmarksAndWrite();
  return 0;
}
