//===- tests/typegc_test.cpp - Type GC routine closures (Figures 3/4) ----===//

#include "core/TypeGc.h"

#include <gtest/gtest.h>

using namespace tfgc;

namespace {

struct TypeGcFixture : ::testing::Test {
  TypeContext Ctx;
  Stats St;
  TypeGcEngine Eng{Ctx, St};
  TgEnv Empty;
};

TEST_F(TypeGcFixture, LeavesEvaluateToConstGc) {
  EXPECT_EQ(Eng.eval(Ctx.intTy(), Empty), Eng.constGc());
  EXPECT_EQ(Eng.eval(Ctx.boolTy(), Empty), Eng.constGc());
  EXPECT_EQ(Eng.eval(Ctx.floatTy(), Empty), Eng.constGc());
  EXPECT_EQ(Eng.nodesBuilt(), 0u);
}

TEST_F(TypeGcFixture, ListOfIntIsFigure3Closure) {
  Type *IntList = Ctx.makeData(Ctx.listInfo(), {Ctx.intTy()});
  const TypeGc *Tg = Eng.eval(IntList, Empty);
  ASSERT_EQ(Tg->K, TypeGc::Kind::Data);
  ASSERT_EQ(Tg->NumArgs, 1u);
  EXPECT_EQ(Tg->Args[0], Eng.constGc()); // trace_list_of(const_gc)
  // Cons fields: [elem, self] — the recursive knot is tied.
  ASSERT_EQ(Tg->NumCtors, 2u);
  ASSERT_EQ(Tg->CtorFieldCounts[1], 2u);
  EXPECT_EQ(Tg->CtorFields[1][0], Eng.constGc());
  EXPECT_EQ(Tg->CtorFields[1][1], Tg);
}

TEST_F(TypeGcFixture, NestedListSharesInner) {
  // trace_list_of(trace_list_of(const_gc)) — Figure 3(b).
  Type *Inner = Ctx.makeData(Ctx.listInfo(), {Ctx.intTy()});
  Type *Outer = Ctx.makeData(Ctx.listInfo(), {Inner});
  const TypeGc *OuterTg = Eng.eval(Outer, Empty);
  const TypeGc *InnerTg = Eng.eval(Inner, Empty);
  EXPECT_EQ(OuterTg->Args[0], InnerTg); // Memoized sharing.
}

TEST_F(TypeGcFixture, RigidVarsResolveThroughEnv) {
  Type *A = Ctx.freshVar(0);
  A->makeRigid(0);
  std::vector<Type *> Params{A};
  Type *BoolListTg = Ctx.makeData(Ctx.listInfo(), {Ctx.boolTy()});
  const TypeGc *Bound = Eng.eval(BoolListTg, Empty);
  const TypeGc *Binds[] = {Bound};
  TgEnv Env;
  Env.Params = &Params;
  Env.Binds = Binds;
  // 'a list under ['a -> bool list] = (bool list) list.
  Type *AList = Ctx.makeData(Ctx.listInfo(), {A});
  const TypeGc *Tg = Eng.eval(AList, Env);
  ASSERT_EQ(Tg->K, TypeGc::Kind::Data);
  EXPECT_EQ(Tg->Args[0], Bound);
}

TEST_F(TypeGcFixture, FunNodesSupportExtraction) {
  // ('a list, int) -> 'a  with 'a bound: extraction by path recovers the
  // binding (Figure 4's parameter recovery).
  Type *A = Ctx.freshVar(0);
  A->makeRigid(0);
  Type *FunTy = Ctx.makeFun({Ctx.makeData(Ctx.listInfo(), {A}), Ctx.intTy()},
                            A);
  std::vector<Type *> Params{A};
  Type *IntListTy = Ctx.makeData(Ctx.listInfo(), {Ctx.intTy()});
  const TypeGc *Bound = Eng.eval(IntListTy, Empty);
  const TypeGc *Binds[] = {Bound};
  TgEnv Env;
  Env.Params = &Params;
  Env.Binds = Binds;
  const TypeGc *FunTg = Eng.eval(FunTy, Env);
  ASSERT_EQ(FunTg->K, TypeGc::Kind::Fun);

  TypePath Path;
  ASSERT_TRUE(findTypePath(FunTy, A, Path));
  EXPECT_EQ(Eng.extract(FunTg, Path), Bound);
  // The first occurrence is inside the first parameter's list argument.
  ASSERT_EQ(Path.size(), 2u);
  EXPECT_EQ(Path[0], 0u);
  EXPECT_EQ(Path[1], 0u);
  // The result position also resolves.
  TypePath ResultPath{2}; // params 0,1 then result.
  EXPECT_EQ(Eng.extract(FunTg, ResultPath), Bound);
}

TEST_F(TypeGcFixture, TupleAndRefNodes) {
  Type *T = Ctx.makeTuple({Ctx.intTy(), Ctx.makeRef(Ctx.intTy())});
  const TypeGc *Tg = Eng.eval(T, Empty);
  ASSERT_EQ(Tg->K, TypeGc::Kind::Record);
  ASSERT_EQ(Tg->NumArgs, 2u);
  EXPECT_EQ(Tg->Args[0], Eng.constGc());
  EXPECT_EQ(Tg->Args[1]->K, TypeGc::Kind::Ref);
}

TEST_F(TypeGcFixture, ResetDropsNodes) {
  Eng.eval(Ctx.makeData(Ctx.listInfo(), {Ctx.intTy()}), Empty);
  EXPECT_GT(Eng.nodesBuilt(), 0u);
  Eng.reset();
  EXPECT_EQ(Eng.nodesBuilt(), 0u);
  // Rebuilding works after reset.
  const TypeGc *Tg =
      Eng.eval(Ctx.makeData(Ctx.listInfo(), {Ctx.boolTy()}), Empty);
  EXPECT_EQ(Tg->K, TypeGc::Kind::Data);
}

TEST_F(TypeGcFixture, NodesAreCountedInStats) {
  Eng.eval(Ctx.makeData(Ctx.listInfo(), {Ctx.intTy()}), Empty);
  EXPECT_EQ(St.get("gc.tg_nodes"), Eng.nodesBuilt());
}

// -- Cross-collection ground-closure cache --------------------------------

TEST_F(TypeGcFixture, GroundClosuresAreCachedAcrossReset) {
  Type *IntList = Ctx.makeData(Ctx.listInfo(), {Ctx.intTy()});
  const TypeGc *First = Eng.eval(IntList, Empty);
  EXPECT_EQ(St.get(StatId::GcTgCacheMisses), 1u);
  EXPECT_EQ(Eng.cachedClosures(), 1u);
  Eng.reset(); // Collection boundary: the cache carries over.
  const TypeGc *Second = Eng.eval(IntList, Empty);
  EXPECT_EQ(First, Second);
  EXPECT_EQ(St.get(StatId::GcTgCacheHits), 1u);
  EXPECT_EQ(St.get(StatId::GcTgCacheMisses), 1u);
}

TEST_F(TypeGcFixture, CachedClosuresKeepRecursiveKnotTied) {
  // The cached (persistent) closure of a recursive datatype must point
  // back at itself, exactly like a per-collection one would.
  Type *IntList = Ctx.makeData(Ctx.listInfo(), {Ctx.intTy()});
  const TypeGc *Tg = Eng.eval(IntList, Empty);
  ASSERT_EQ(Tg->NumCtors, 2u);
  ASSERT_EQ(Tg->CtorFieldCounts[1], 2u);
  EXPECT_EQ(Tg->CtorFields[1][1], Tg); // cons tail -> self
  Eng.reset();
  const TypeGc *Again = Eng.eval(IntList, Empty);
  EXPECT_EQ(Again, Tg);
  EXPECT_EQ(Again->CtorFields[1][1], Again); // Knot intact after reset.
}

TEST_F(TypeGcFixture, NonGroundClosuresBypassCache) {
  Type *A = Ctx.freshVar(0);
  A->makeRigid(0);
  std::vector<Type *> Params{A};
  const TypeGc *Binds[] = {Eng.constGc()};
  TgEnv Env;
  Env.Params = &Params;
  Env.Binds = Binds;
  Type *AList = Ctx.makeData(Ctx.listInfo(), {A});
  Eng.eval(AList, Env);
  // A closure that depends on the bindings must be rebuilt every
  // collection — it never enters the cache.
  EXPECT_EQ(Eng.cachedClosures(), 0u);
  EXPECT_EQ(St.get(StatId::GcTgCacheHits), 0u);
  EXPECT_EQ(St.get(StatId::GcTgCacheMisses), 0u);
}

TEST_F(TypeGcFixture, PersistentClosuresNeverAliasPerCollectionNodes) {
  // Build 'a list with ['a -> const_gc] first: that populates the
  // per-collection Data memo with the key (list, [const]) — the same key
  // the ground int list uses. The cached closure must not adopt the
  // per-collection node, or it would dangle after reset().
  Type *A = Ctx.freshVar(0);
  A->makeRigid(0);
  std::vector<Type *> Params{A};
  const TypeGc *Binds[] = {Eng.constGc()};
  TgEnv Env;
  Env.Params = &Params;
  Env.Binds = Binds;
  Type *AList = Ctx.makeData(Ctx.listInfo(), {A});
  const TypeGc *PerCollection = Eng.eval(AList, Env);
  Type *IntList = Ctx.makeData(Ctx.listInfo(), {Ctx.intTy()});
  const TypeGc *Cached = Eng.eval(IntList, Empty);
  EXPECT_NE(Cached, PerCollection);
  Eng.reset();
  EXPECT_EQ(Eng.eval(IntList, Empty), Cached);
}

TEST_F(TypeGcFixture, ResetAllDropsCache) {
  Type *IntList = Ctx.makeData(Ctx.listInfo(), {Ctx.intTy()});
  Eng.eval(IntList, Empty);
  EXPECT_EQ(Eng.cachedClosures(), 1u);
  Eng.resetAll();
  EXPECT_EQ(Eng.cachedClosures(), 0u);
  Eng.eval(IntList, Empty);
  EXPECT_EQ(St.get(StatId::GcTgCacheMisses), 2u); // Rebuilt from scratch.
}

TEST_F(TypeGcFixture, CacheDisableRestoresPerCollectionRebuild) {
  Eng.setCrossCollectionCache(false);
  Type *IntList = Ctx.makeData(Ctx.listInfo(), {Ctx.intTy()});
  const TypeGc *First = Eng.eval(IntList, Empty);
  EXPECT_EQ(First->K, TypeGc::Kind::Data);
  Eng.reset();
  EXPECT_EQ(Eng.cachedClosures(), 0u);
  EXPECT_EQ(St.get(StatId::GcTgCacheHits), 0u);
  EXPECT_EQ(St.get(StatId::GcTgCacheMisses), 0u);
  // Rebuilt per collection, the paper's baseline model; within one
  // collection the Data memo still shares.
  const TypeGc *Second = Eng.eval(IntList, Empty);
  EXPECT_EQ(Eng.eval(IntList, Empty), Second);
}

} // namespace
