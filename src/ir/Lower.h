//===- ir/Lower.h - AST to IR lowering --------------------------*- C++ -*-===//
///
/// \file
/// Lowers the typed AST into the register IR:
///
/// * the whole program becomes a `main` function plus one IrFunction per
///   `fun` binding, lambda and stub;
/// * functions without captured variables are lambda-lifted and called
///   directly; lambdas, local functions with captures, and named functions
///   used as values become closures (slot 0 = the closure itself);
/// * pattern matches compile to tag tests + field loads (the paper's
///   variant-record discriminant checks, section 2.3);
/// * every direct call site records the instantiation of the callee's type
///   parameters as types over the caller's type parameters — exactly what
///   the paper's polymorphic frame GC routines pass down the stack
///   (section 3); indirect sites record the closure's static type.
///
/// Restrictions (diagnosed): polymorphic local functions that capture
/// variables are rejected; constructors are not first-class.
///
//===----------------------------------------------------------------------===//

#ifndef TFGC_IR_LOWER_H
#define TFGC_IR_LOWER_H

#include "frontend/Ast.h"
#include "ir/Ir.h"
#include "support/Diagnostics.h"
#include "types/Infer.h"

#include <memory>
#include <optional>
#include <unordered_map>
#include <unordered_set>

namespace tfgc {

class Lowerer {
public:
  Lowerer(TypeContext &Ctx, SemaInfo &Sema, DiagnosticEngine &Diags);

  /// Lowers \p P. Returns nullopt after reporting errors.
  std::optional<IrProgram> lower(Program &P);

private:
  TypeContext &Ctx;
  SemaInfo &Sema;
  DiagnosticEngine &Diags;

  IrProgram Prog;
  std::vector<std::unique_ptr<IrFunction>> Fns;
  /// Instantiation map for each direct call site (callee rigid var ->
  /// type over caller rigid vars); converted to vectors in finalize().
  std::vector<std::unordered_map<Type *, Type *>> SiteInstMaps;
  std::unordered_map<FuncId, FuncId> StubOf;

  struct Binding {
    enum class Kind { Slot, DirectFn };
    Kind K = Kind::Slot;
    SlotIndex Slot = 0;
    FuncId Fn = InvalidFunc;
    Type *SchemeBody = nullptr; ///< DirectFn: function type with rigid vars.
  };

  /// Per-function lowering state. Contexts nest with closure lowering.
  struct FnContext {
    IrFunction *F = nullptr;
    std::vector<std::unordered_map<std::string, Binding>> Scopes;
    LabelId AbortLabel = 0;
    bool HasAbortLabel = false;
  };
  std::vector<std::unique_ptr<FnContext>> CtxStack;

  FnContext &ctx() { return *CtxStack.back(); }
  IrFunction &fn() { return *ctx().F; }

  // -- Function construction ----------------------------------------------
  IrFunction *newFunction(const std::string &Name);
  void pushContext(IrFunction *F);
  void popContext();
  SlotIndex newSlot(Type *Ty);
  Instr &emit(Opcode Op);
  LabelId newLabel();
  void bindLabel(LabelId L);
  LabelId abortLabel();
  CallSiteId newSite(SiteKind Kind, uint32_t InstrIdx, SourceLoc Loc = {});
  void finishFunction();

  // -- Scope management ----------------------------------------------------
  void pushScope() { ctx().Scopes.emplace_back(); }
  void popScope() { ctx().Scopes.pop_back(); }
  void bindName(const std::string &Name, Binding B);
  /// Looks \p Name up in the current context, falling back to DirectFn
  /// bindings of enclosing contexts. Returns nullptr if unbound.
  const Binding *resolve(const std::string &Name);

  // -- Free variable scanning ----------------------------------------------
  static void freeNamesExpr(const Expr *E, std::unordered_set<std::string> &Bound,
                            std::vector<std::string> &Out,
                            std::unordered_set<std::string> &OutSet);
  static void freeNamesDecl(const Decl *D, std::unordered_set<std::string> &Bound,
                            std::vector<std::string> &Out,
                            std::unordered_set<std::string> &OutSet);
  static void patternNames(const Pattern *P,
                           std::unordered_set<std::string> &Bound);

  // -- Declarations ---------------------------------------------------------
  void lowerDecl(Decl *D);
  void lowerFunGroup(Decl *D);
  void lowerLiftedGroup(Decl *D);
  void lowerClosureGroup(Decl *D, const std::vector<std::string> &Captures);
  void lowerValDecl(Decl *D);

  // -- Expressions ----------------------------------------------------------
  SlotIndex lowerExpr(Expr *E);
  SlotIndex lowerApp(AppExpr *A);
  SlotIndex lowerCase(CaseExpr *C);
  SlotIndex lowerPrim(PrimExpr *E);
  SlotIndex lowerLambda(FnExpr *F);
  SlotIndex materializeStub(FuncId Target, Type *UseTy, SourceLoc Loc);
  FuncId getStub(FuncId Target);

  /// Emits tests for \p P against \p Scrut; on failure jumps to \p Fail.
  /// Binds pattern variables in the current scope.
  void lowerPatternTest(Pattern *P, SlotIndex Scrut, LabelId Fail);
  void lowerIrrefutable(Pattern *P, SlotIndex Scrut);

  /// Builds the callee-param -> use-type map by structural matching.
  void matchInstantiation(Type *SchemeTy, Type *UseTy,
                          std::unordered_map<Type *, Type *> &Map);

  /// Lowers the shared parts of a function body: parameter patterns, then
  /// the body expression, then Return.
  void lowerFunctionBody(const std::vector<Pattern *> &Params, Expr *Body);

  // -- Finalization ---------------------------------------------------------
  /// Completes per-function TypeParams (adds rigids reachable from slot
  /// types and call sites, to a fixpoint) and converts instantiation maps
  /// to vectors aligned with each callee's final TypeParams.
  bool finalizeTypeParams();
};

} // namespace tfgc

#endif // TFGC_IR_LOWER_H
