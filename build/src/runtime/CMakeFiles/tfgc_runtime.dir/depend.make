# Empty dependencies file for tfgc_runtime.
# This may be replaced when dependencies are built.
