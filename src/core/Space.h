//===- core/Space.h - Copying vs mark-sweep policy --------------*- C++ -*-===//
///
/// \file
/// The tag-free tracing engines are generic over the underlying collection
/// algorithm (the paper supports both copying and mark/sweep). A Space
/// answers "was this object visited already?" and performs the visit
/// (copy+forward, or mark).
///
//===----------------------------------------------------------------------===//

#ifndef TFGC_CORE_SPACE_H
#define TFGC_CORE_SPACE_H

#include "runtime/GenHeap.h"
#include "runtime/Heap.h"
#include "runtime/MarkSweepHeap.h"

#include <cstring>
#include <functional>
#include <memory>
#include <unordered_set>

namespace tfgc {

class Space {
public:
  virtual ~Space() = default;

  /// If \p Ref was already visited, sets \p NewRef and returns true.
  virtual bool alreadyVisited(Word Ref, Word &NewRef) = 0;

  /// First visit: copies (copying) or marks (mark-sweep) the object whose
  /// payload is \p PayloadWords words. Returns the object's new reference.
  virtual Word visitNew(Word Ref, size_t PayloadWords) = 0;

  /// Parallel first-visit arbitration, called by the tracers between
  /// alreadyVisited() and visitNew(). Serial spaces claim unconditionally
  /// (this default), so the serial trace path is unchanged. Parallel
  /// spaces atomically race for the object: true = caller won and must
  /// visitNew() + scan; false = another worker owns it and \p NewRef is
  /// its final reference (for copying spaces this may spin until the
  /// winner publishes). Word 0 of an object is only stable for the claim
  /// winner — tracers must read discriminants / closure code addresses
  /// *after* a successful tryClaim (DESIGN.md section 11).
  virtual bool tryClaim(Word Ref, Word &NewRef) {
    (void)Ref;
    (void)NewRef;
    return true;
  }

  /// A thread-private sibling policy for one GC worker (shares the heap,
  /// owns its own survival counters), or nullptr when this policy cannot
  /// trace in parallel (CheckSpace; any space whose heap is not armed).
  virtual std::unique_ptr<Space> makeWorkerSpace() { return nullptr; }

  /// Folds a worker sibling's counters back into this base space after
  /// the workers join (still inside the pause).
  virtual void mergeWorker(Space &Worker) { (void)Worker; }

  /// The payload to scan/patch after visitNew (the to-space copy under
  /// copying collection).
  Word *payload(Word Ref) const { return reinterpret_cast<Word *>(Ref); }
};

/// Parallel sibling of CopyingSpace: claim with an atomic fetch-or on the
/// forward bitmap, copy into a CAS-bumped to-space slice, then publish the
/// forwarding address (runtime/Heap.h claim/publish protocol).
class ParCopyingSpace : public Space {
public:
  ParCopyingSpace(Heap &H, bool TaggedHeaders)
      : H(H), TaggedHeaders(TaggedHeaders) {}

  bool alreadyVisited(Word Ref, Word &NewRef) override {
    Word *Obj = reinterpret_cast<Word *>(Ref);
    if (!H.isForwardedAtomic(Obj))
      return false;
    NewRef = H.waitForwardee(Obj);
    return true;
  }

  bool tryClaim(Word Ref, Word &NewRef) override {
    Word *Obj = reinterpret_cast<Word *>(Ref);
    if (H.tryClaimForward(Obj))
      return true;
    NewRef = H.waitForwardee(Obj);
    return false;
  }

  Word visitNew(Word Ref, size_t PayloadWords) override {
    Word *Old = reinterpret_cast<Word *>(Ref);
    Word *New;
    if (TaggedHeaders) {
      Word *Alloc = H.allocateInToSpaceParallel(PayloadWords + 1);
      Alloc[0] = Old[-1];
      New = Alloc + 1;
    } else {
      New = H.allocateInToSpaceParallel(PayloadWords);
    }
    std::memcpy(New, Old, PayloadWords * sizeof(Word));
    H.publishForward(Old, (Word)(uintptr_t)New);
    return (Word)(uintptr_t)New;
  }

private:
  Heap &H;
  bool TaggedHeaders;
};

/// Semispace policy. With \p TaggedHeaders, objects carry a header at
/// payload[-1] that is copied along.
class CopyingSpace : public Space {
public:
  CopyingSpace(Heap &H, bool TaggedHeaders)
      : H(H), TaggedHeaders(TaggedHeaders) {}

  bool alreadyVisited(Word Ref, Word &NewRef) override {
    Word *Obj = reinterpret_cast<Word *>(Ref);
    if (!H.isForwarded(Obj))
      return false;
    NewRef = H.forwardee(Obj);
    return true;
  }

  Word visitNew(Word Ref, size_t PayloadWords) override {
    Word *Old = reinterpret_cast<Word *>(Ref);
    Word *New;
    if (TaggedHeaders) {
      Word *Alloc = H.allocateInToSpace(PayloadWords + 1);
      Alloc[0] = Old[-1];
      New = Alloc + 1;
    } else {
      New = H.allocateInToSpace(PayloadWords);
    }
    std::memcpy(New, Old, PayloadWords * sizeof(Word));
    H.setForwarded(Old, (Word)(uintptr_t)New);
    return (Word)(uintptr_t)New;
  }

  std::unique_ptr<Space> makeWorkerSpace() override {
    if (!H.parallelTracing())
      return nullptr;
    return std::make_unique<ParCopyingSpace>(H, TaggedHeaders);
  }

private:
  Heap &H;
  bool TaggedHeaders;
};

/// Parallel sibling of MarkSpace. Non-moving, so there is no publish
/// protocol: the atomic mark claim *is* the whole arbitration, and losers
/// keep the unchanged reference without waiting.
class ParMarkSpace : public Space {
public:
  ParMarkSpace(MarkSweepHeap &H, bool TaggedHeaders)
      : H(H), TaggedHeaders(TaggedHeaders) {}

  bool alreadyVisited(Word Ref, Word &NewRef) override {
    if (!H.isMarkedAtomic(block(Ref)))
      return false;
    NewRef = Ref;
    return true;
  }

  bool tryClaim(Word Ref, Word &NewRef) override {
    NewRef = Ref;
    return H.tryMarkAtomic(block(Ref));
  }

  Word visitNew(Word Ref, size_t PayloadWords) override {
    // Already marked by the winning tryClaim.
    (void)PayloadWords;
    return Ref;
  }

private:
  const Word *block(Word Ref) const {
    return reinterpret_cast<const Word *>(Ref) - (TaggedHeaders ? 1 : 0);
  }

  MarkSweepHeap &H;
  bool TaggedHeaders;
};

/// Non-moving policy. Marks are recorded against block addresses, which
/// under the tagged model sit one header word before the payload.
class MarkSpace : public Space {
public:
  MarkSpace(MarkSweepHeap &H, bool TaggedHeaders)
      : H(H), TaggedHeaders(TaggedHeaders) {}

  bool alreadyVisited(Word Ref, Word &NewRef) override {
    if (!H.isMarked(block(Ref)))
      return false;
    NewRef = Ref;
    return true;
  }

  Word visitNew(Word Ref, size_t PayloadWords) override {
    (void)PayloadWords;
    H.tryMark(block(Ref));
    return Ref;
  }

  std::unique_ptr<Space> makeWorkerSpace() override {
    return std::make_unique<ParMarkSpace>(H, TaggedHeaders);
  }

private:
  const Word *block(Word Ref) const {
    return reinterpret_cast<const Word *>(Ref) - (TaggedHeaders ? 1 : 0);
  }

  MarkSweepHeap &H;
  bool TaggedHeaders;
};

/// Parallel sibling of GenMinorSpace: thread-private survival counters,
/// CAS evacuation bumps, claim/publish forwarding.
class ParGenMinorSpace : public Space {
public:
  ParGenMinorSpace(GenHeap &H, bool TaggedHeaders, bool Promote)
      : H(H), TaggedHeaders(TaggedHeaders), Promote(Promote) {}

  bool alreadyVisited(Word Ref, Word &NewRef) override {
    if (!H.inNursery(Ref)) {
      NewRef = Ref;
      return true;
    }
    Word *Obj = reinterpret_cast<Word *>(Ref);
    if (!H.isForwardedAtomic(Obj))
      return false;
    NewRef = H.waitForwardee(Obj);
    return true;
  }

  bool tryClaim(Word Ref, Word &NewRef) override {
    Word *Obj = reinterpret_cast<Word *>(Ref);
    if (H.tryClaimForward(Obj))
      return true;
    NewRef = H.waitForwardee(Obj);
    return false;
  }

  Word visitNew(Word Ref, size_t PayloadWords) override {
    Word *Old = reinterpret_cast<Word *>(Ref);
    size_t Total = PayloadWords + (TaggedHeaders ? 1 : 0);
    Word *Alloc = Promote ? H.allocateInTenuredParallel(Total)
                          : H.allocateInSurvivorSpaceParallel(Total);
    Word *New;
    if (TaggedHeaders) {
      Alloc[0] = Old[-1];
      New = Alloc + 1;
    } else {
      New = Alloc;
    }
    std::memcpy(New, Old, PayloadWords * sizeof(Word));
    H.publishForward(Old, (Word)(uintptr_t)New);
    if (Promote) {
      ++PromotedObjs;
      PromotedWords += Total;
    } else {
      ++SurvivorObjs;
      SurvivorWords += Total;
    }
    return (Word)(uintptr_t)New;
  }

  uint64_t promotedObjects() const { return PromotedObjs; }
  uint64_t promotedWords() const { return PromotedWords; }
  uint64_t survivorObjects() const { return SurvivorObjs; }
  uint64_t survivorWords() const { return SurvivorWords; }

private:
  GenHeap &H;
  bool TaggedHeaders;
  bool Promote;
  uint64_t PromotedObjs = 0, PromotedWords = 0;
  uint64_t SurvivorObjs = 0, SurvivorWords = 0;
};

/// Minor-collection policy over a generational heap: only nursery objects
/// move. Tenured references short-circuit as already-visited (tenured is
/// not scanned during a minor — old→young edges arrive via the remembered
/// set instead). Survivors evacuate either to the nursery to-space or,
/// when \p Promote is set (en-masse promotion), to the tenured space.
class GenMinorSpace : public Space {
public:
  GenMinorSpace(GenHeap &H, bool TaggedHeaders, bool Promote)
      : H(H), TaggedHeaders(TaggedHeaders), Promote(Promote) {}

  bool alreadyVisited(Word Ref, Word &NewRef) override {
    if (!H.inNursery(Ref)) {
      // Old (or immortal/global) objects stay put and are not rescanned.
      NewRef = Ref;
      return true;
    }
    Word *Obj = reinterpret_cast<Word *>(Ref);
    if (!H.isForwarded(Obj))
      return false;
    NewRef = H.forwardee(Obj);
    return true;
  }

  Word visitNew(Word Ref, size_t PayloadWords) override {
    Word *Old = reinterpret_cast<Word *>(Ref);
    size_t Total = PayloadWords + (TaggedHeaders ? 1 : 0);
    Word *Alloc = Promote ? H.allocateInTenured(Total)
                          : H.allocateInSurvivorSpace(Total);
    Word *New;
    if (TaggedHeaders) {
      Alloc[0] = Old[-1];
      New = Alloc + 1;
    } else {
      New = Alloc;
    }
    std::memcpy(New, Old, PayloadWords * sizeof(Word));
    H.setForwarded(Old, (Word)(uintptr_t)New);
    if (Promote) {
      ++PromotedObjs;
      PromotedWords += Total;
    } else {
      ++SurvivorObjs;
      SurvivorWords += Total;
    }
    return (Word)(uintptr_t)New;
  }

  uint64_t promotedObjects() const { return PromotedObjs; }
  uint64_t promotedWords() const { return PromotedWords; }
  uint64_t survivorObjects() const { return SurvivorObjs; }
  uint64_t survivorWords() const { return SurvivorWords; }

  std::unique_ptr<Space> makeWorkerSpace() override {
    if (!H.parallelTracing())
      return nullptr;
    return std::make_unique<ParGenMinorSpace>(H, TaggedHeaders, Promote);
  }
  void mergeWorker(Space &Worker) override {
    auto &P = static_cast<ParGenMinorSpace &>(Worker);
    PromotedObjs += P.promotedObjects();
    PromotedWords += P.promotedWords();
    SurvivorObjs += P.survivorObjects();
    SurvivorWords += P.survivorWords();
  }

private:
  GenHeap &H;
  bool TaggedHeaders;
  bool Promote;
  uint64_t PromotedObjs = 0, PromotedWords = 0;
  uint64_t SurvivorObjs = 0, SurvivorWords = 0;
};

/// Parallel sibling of GenMajorSpace.
class ParGenMajorSpace : public Space {
public:
  ParGenMajorSpace(GenHeap &H, bool TaggedHeaders)
      : H(H), TaggedHeaders(TaggedHeaders) {}

  bool alreadyVisited(Word Ref, Word &NewRef) override {
    Word *Obj = reinterpret_cast<Word *>(Ref);
    if (!H.isForwardedAtomic(Obj))
      return false;
    NewRef = H.waitForwardee(Obj);
    return true;
  }

  bool tryClaim(Word Ref, Word &NewRef) override {
    Word *Obj = reinterpret_cast<Word *>(Ref);
    if (H.tryClaimForward(Obj))
      return true;
    NewRef = H.waitForwardee(Obj);
    return false;
  }

  Word visitNew(Word Ref, size_t PayloadWords) override {
    Word *Old = reinterpret_cast<Word *>(Ref);
    size_t Total = PayloadWords + (TaggedHeaders ? 1 : 0);
    bool Young = H.inNursery(Ref);
    Word *Alloc = H.allocateInToSpaceParallel(Total);
    Word *New;
    if (TaggedHeaders) {
      Alloc[0] = Old[-1];
      New = Alloc + 1;
    } else {
      New = Alloc;
    }
    std::memcpy(New, Old, PayloadWords * sizeof(Word));
    H.publishForward(Old, (Word)(uintptr_t)New);
    if (Young) {
      ++YoungEvacObjs;
      YoungEvacWords += Total;
    }
    return (Word)(uintptr_t)New;
  }

  uint64_t youngEvacuatedObjects() const { return YoungEvacObjs; }
  uint64_t youngEvacuatedWords() const { return YoungEvacWords; }

private:
  GenHeap &H;
  bool TaggedHeaders;
  uint64_t YoungEvacObjs = 0, YoungEvacWords = 0;
};

/// Major-collection policy over a generational heap: the entire live
/// graph — young and old — evacuates into a fresh tenured to-space.
/// Young objects evacuated here count as promotions (they leave the
/// nursery for good).
class GenMajorSpace : public Space {
public:
  GenMajorSpace(GenHeap &H, bool TaggedHeaders)
      : H(H), TaggedHeaders(TaggedHeaders) {}

  bool alreadyVisited(Word Ref, Word &NewRef) override {
    Word *Obj = reinterpret_cast<Word *>(Ref);
    if (!H.isForwarded(Obj))
      return false;
    NewRef = H.forwardee(Obj);
    return true;
  }

  Word visitNew(Word Ref, size_t PayloadWords) override {
    Word *Old = reinterpret_cast<Word *>(Ref);
    size_t Total = PayloadWords + (TaggedHeaders ? 1 : 0);
    bool Young = H.inNursery(Ref);
    Word *Alloc = H.allocateInToSpace(Total);
    Word *New;
    if (TaggedHeaders) {
      Alloc[0] = Old[-1];
      New = Alloc + 1;
    } else {
      New = Alloc;
    }
    std::memcpy(New, Old, PayloadWords * sizeof(Word));
    H.setForwarded(Old, (Word)(uintptr_t)New);
    if (Young) {
      ++YoungEvacObjs;
      YoungEvacWords += Total;
    }
    return (Word)(uintptr_t)New;
  }

  uint64_t youngEvacuatedObjects() const { return YoungEvacObjs; }
  uint64_t youngEvacuatedWords() const { return YoungEvacWords; }

  std::unique_ptr<Space> makeWorkerSpace() override {
    if (!H.parallelTracing())
      return nullptr;
    return std::make_unique<ParGenMajorSpace>(H, TaggedHeaders);
  }
  void mergeWorker(Space &Worker) override {
    auto &P = static_cast<ParGenMajorSpace &>(Worker);
    YoungEvacObjs += P.youngEvacuatedObjects();
    YoungEvacWords += P.youngEvacuatedWords();
  }

private:
  GenHeap &H;
  bool TaggedHeaders;
  uint64_t YoungEvacObjs = 0, YoungEvacWords = 0;
};

/// Read-only verification policy: visits the reachable graph without
/// moving or marking anything, validating that every reference lands
/// inside the live heap. Used after a collection to catch collector bugs
/// (a pointer the tracer failed to forward would point into the dead
/// from-space, which no longer exists).
class CheckSpace : public Space {
public:
  /// \p InBounds answers whether a payload address lies in the live heap.
  CheckSpace(std::function<bool(Word)> InBounds, bool TaggedHeaders)
      : InBounds(std::move(InBounds)), TaggedHeaders(TaggedHeaders) {}

  bool alreadyVisited(Word Ref, Word &NewRef) override {
    if (!Visited.count(Ref))
      return false;
    NewRef = Ref;
    return true;
  }

  Word visitNew(Word Ref, size_t PayloadWords) override {
    Word First = TaggedHeaders ? Ref - sizeof(Word) : Ref;
    Word Last = Ref + (PayloadWords ? PayloadWords - 1 : 0) * sizeof(Word);
    if (!InBounds(First) || !InBounds(Last))
      ++Violations;
    Visited.insert(Ref);
    return Ref;
  }

  uint64_t violations() const { return Violations; }

private:
  std::function<bool(Word)> InBounds;
  bool TaggedHeaders;
  std::unordered_set<Word> Visited;
  uint64_t Violations = 0;
};

} // namespace tfgc

#endif // TFGC_CORE_SPACE_H
