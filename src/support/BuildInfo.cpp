//===- support/BuildInfo.cpp ----------------------------------------------===//

#include "support/BuildInfo.h"

#include "BuildInfo.inc"

using namespace tfgc;

const BuildInfo &tfgc::buildInfo() {
  static const BuildInfo Info = {TFGC_BUILD_GIT_SHA, TFGC_BUILD_DISPATCH,
                                 TFGC_BUILD_SANITIZER, TFGC_BUILD_TYPE};
  return Info;
}
