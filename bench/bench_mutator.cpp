//===- bench/bench_mutator.cpp - E1/E13: mutator-side costs --------------===//
///
/// E1 — paper claim (section 1, "More efficient execution"): manipulating
/// type tags costs the mutator — integers must be untagged before
/// arithmetic and retagged after, and floats are boxed. The tag-free
/// strategies pay none of that. This bench runs allocation-free integer
/// arithmetic and a float kernel under the tagged and tag-free value
/// models and reports both wall time and the counted tag operations /
/// float boxes.
///
/// E13 — mutator fast path: the same VM executes under two
/// configurations, interleaved A/B with medians so machine noise cancels:
///
///   A (baseline)  --dispatch=switch, fusion off, floats boxed — the
///                 pre-fast-path interpreter;
///   B (fast)      threaded dispatch, superinstruction fusion, float
///                 self-tagging — the production defaults.
///
/// Both run the identical decoded semantics (the dispatch-equivalence
/// test suite holds the GC counters bit-identical), so the delta is pure
/// dispatch + fusion + boxing cost.
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include <algorithm>
#include <chrono>

using namespace tfgc;
using namespace tfgc::bench;
namespace wl = tfgc::workloads;

namespace {

std::unique_ptr<CompiledProgram> &arithProgram() {
  static auto P = compileOrDie(wl::arithKernel(200000));
  return P;
}
std::unique_ptr<CompiledProgram> &floatProgram() {
  static auto P = compileOrDie(wl::floatKernel(64, 200));
  return P;
}
std::unique_ptr<CompiledProgram> &floatMathProgram() {
  static auto P = compileOrDie(wl::floatMath(300000));
  return P;
}
std::unique_ptr<CompiledProgram> &opcodeMixProgram() {
  static auto P = compileOrDie(wl::opcodeMix(200000));
  return P;
}
std::unique_ptr<CompiledProgram> &churnProgram() {
  static auto P = compileOrDie(wl::listChurn(200, 64));
  return P;
}

void BM_ArithTagged(benchmark::State &State) {
  timedRun(State, *arithProgram(), GcStrategy::Tagged, GcAlgorithm::Copying,
           1 << 22);
}
void BM_ArithTagFree(benchmark::State &State) {
  timedRun(State, *arithProgram(), GcStrategy::CompiledTagFree,
           GcAlgorithm::Copying, 1 << 22);
}
void BM_FloatTagged(benchmark::State &State) {
  timedRun(State, *floatProgram(), GcStrategy::Tagged, GcAlgorithm::Copying,
           1 << 22);
}
void BM_FloatTagFree(benchmark::State &State) {
  timedRun(State, *floatProgram(), GcStrategy::CompiledTagFree,
           GcAlgorithm::Copying, 1 << 22);
}
// Mark-sweep configuration: an allocation-heavy workload on a small heap,
// so mutator throughput is dominated by allocate/mark/sweep — the numbers
// that move when the heap's free lists, block index, and mark set change.
void BM_ChurnTagFreeMarkSweep(benchmark::State &State) {
  timedRun(State, *churnProgram(), GcStrategy::CompiledTagFree,
           GcAlgorithm::MarkSweep, 1 << 14);
}
void BM_ChurnTaggedMarkSweep(benchmark::State &State) {
  timedRun(State, *churnProgram(), GcStrategy::Tagged, GcAlgorithm::MarkSweep,
           1 << 14);
}

// E13 timing pairs: identical program/strategy, baseline vs fast path.
void BM_ArithBaseline(benchmark::State &State) {
  timedRun(State, *arithProgram(), GcStrategy::CompiledTagFree,
           GcAlgorithm::Copying, 1 << 22, false, false, 0,
           DispatchMode::Switch, /*Fuse=*/false, /*FloatSelfTag=*/false,
           /*TailCalls=*/false);
}
void BM_ArithFastPath(benchmark::State &State) {
  timedRun(State, *arithProgram(), GcStrategy::CompiledTagFree,
           GcAlgorithm::Copying, 1 << 22);
}
void BM_FloatMathBoxed(benchmark::State &State) {
  timedRun(State, *floatMathProgram(), GcStrategy::Tagged,
           GcAlgorithm::Copying, 1 << 22, false, false, 0,
           DispatchMode::Switch, /*Fuse=*/false, /*FloatSelfTag=*/false,
           /*TailCalls=*/false);
}
void BM_FloatMathSelfTag(benchmark::State &State) {
  timedRun(State, *floatMathProgram(), GcStrategy::Tagged,
           GcAlgorithm::Copying, 1 << 22);
}
void BM_OpcodeMixBaseline(benchmark::State &State) {
  timedRun(State, *opcodeMixProgram(), GcStrategy::CompiledTagFree,
           GcAlgorithm::Copying, 1 << 22, false, false, 0,
           DispatchMode::Switch, /*Fuse=*/false, /*FloatSelfTag=*/false,
           /*TailCalls=*/false);
}
void BM_OpcodeMixFastPath(benchmark::State &State) {
  timedRun(State, *opcodeMixProgram(), GcStrategy::CompiledTagFree,
           GcAlgorithm::Copying, 1 << 22);
}

BENCHMARK(BM_ArithTagged);
BENCHMARK(BM_ArithTagFree);
BENCHMARK(BM_FloatTagged);
BENCHMARK(BM_FloatTagFree);
BENCHMARK(BM_ChurnTagFreeMarkSweep);
BENCHMARK(BM_ChurnTaggedMarkSweep);
BENCHMARK(BM_ArithBaseline);
BENCHMARK(BM_ArithFastPath);
BENCHMARK(BM_FloatMathBoxed);
BENCHMARK(BM_FloatMathSelfTag);
BENCHMARK(BM_OpcodeMixBaseline);
BENCHMARK(BM_OpcodeMixFastPath);

// -- E13 interleaved A/B harness ----------------------------------------

struct FastPathCfg {
  DispatchMode Dispatch;
  bool Fuse;
  bool FloatSelfTag;
  bool TailCalls;
};
constexpr FastPathCfg BaselineCfg{DispatchMode::Switch, false, false, false};
constexpr FastPathCfg FastCfg{DispatchMode::Auto, true, true, true};

/// One run with the given configuration; the timer brackets M.run() only,
/// so decode/fusion setup is excluded from both sides. Fills \p StOut.
double runKernelMs(CompiledProgram &P, GcStrategy S, const FastPathCfg &C,
                   Stats &StOut) {
  std::string Err;
  auto Col = P.makeCollector(S, GcAlgorithm::Copying, 1 << 22, StOut, &Err);
  if (!Col) {
    std::fprintf(stderr, "E13 kernel rejected: %s\n", Err.c_str());
    std::abort();
  }
  VmOptions VO = defaultVmOptions(S, false);
  VO.Dispatch = C.Dispatch;
  VO.FuseSuperinstructions = C.Fuse;
  VO.FloatSelfTag = C.FloatSelfTag;
  VO.TailCalls = C.TailCalls;
  Vm M(P.Prog, P.Image, *P.Types, *Col, VO);
  auto T0 = std::chrono::steady_clock::now();
  RunResult R = M.run();
  auto T1 = std::chrono::steady_clock::now();
  if (!R.Ok) {
    std::fprintf(stderr, "E13 kernel failed: %s\n", R.Error.c_str());
    std::abort();
  }
  M.flushCounters();
  return std::chrono::duration<double, std::milli>(T1 - T0).count();
}

double median(std::vector<double> V) {
  std::sort(V.begin(), V.end());
  return V[V.size() / 2];
}

void printDispatchTable() {
  struct Kernel {
    const char *Name;
    CompiledProgram *P;
    GcStrategy S;
  } Kernels[] = {
      {"arith", arithProgram().get(), GcStrategy::CompiledTagFree},
      {"floatMath", floatMathProgram().get(), GcStrategy::Tagged},
      {"opcodeMix", opcodeMixProgram().get(), GcStrategy::CompiledTagFree},
  };

  tableHeader(
      "E13: mutator fast path (interleaved A/B, median of 7 rounds)",
      "A = switch dispatch, no fusion, boxed floats, no tail calls; "
      "B = threaded + fused + self-tagged + frame-reusing tail calls",
      {"kernel", "A ms (median)", "B ms (median)", "speedup", "B superinstrs",
       "B tail calls", "B float boxes"});
  for (const Kernel &K : Kernels) {
    constexpr int Rounds = 7;
    std::vector<double> A, B;
    Stats StA, StB;
    for (int R = 0; R < Rounds; ++R) {
      StA = Stats();
      StB = Stats();
      A.push_back(runKernelMs(*K.P, K.S, BaselineCfg, StA));
      B.push_back(runKernelMs(*K.P, K.S, FastCfg, StB));
    }
    if (JsonSink *Sink = JsonSink::active()) {
      Sink->setWorkload(std::string(K.Name) + "/e13-baseline");
      Sink->record(gcStrategyName(K.S), GcAlgorithm::Copying, 1 << 22, StA);
      Sink->setWorkload(std::string(K.Name) + "/e13-fastpath");
      Sink->record(gcStrategyName(K.S), GcAlgorithm::Copying, 1 << 22, StB);
    }
    double MedA = median(A), MedB = median(B);
    tableCell(K.Name);
    tableCell(MedA);
    tableCell(MedB);
    tableCell(MedA / MedB);
    tableCell(StB.get(StatId::VmSuperinstructions));
    tableCell(StB.get(StatId::VmTailCalls));
    tableCell(StB.get(StatId::VmFloatBoxes));
    tableEnd();
  }
  std::printf("\nExpected shape: >=1.5x on arith/floatMath; baseline "
              "executes zero superinstructions;\nself-tagging drives "
              "vm.float_boxes to 0 on the pure-float kernel.\n");
}

void printTable() {
  tableHeader("E1: mutator overhead of tagging",
              "arith kernel: 200k iterations of add/mul/mod; float kernel: "
              "float list build+sum",
              {"workload", "model", "vm steps", "tag ops", "float boxes",
               "heap allocs"});
  struct Row {
    const char *Name;
    std::string Src;
  } Rows[] = {
      {"arith", wl::arithKernel(200000)},
      {"float", wl::floatKernel(64, 200)},
  };
  for (const Row &R : Rows) {
    jsonWorkload(R.Name);
    for (GcStrategy S : {GcStrategy::Tagged, GcStrategy::CompiledTagFree}) {
      Stats St = runOnce(R.Src, S, GcAlgorithm::Copying, 1 << 22);
      tableCell(R.Name);
      tableCell(S == GcStrategy::Tagged ? "tagged" : "tag-free");
      tableCell(St.get(StatId::VmSteps));
      tableCell(St.get(StatId::VmTagOps));
      tableCell(St.get(StatId::VmFloatBoxes));
      tableCell(St.get(StatId::HeapObjectsAllocated));
      tableEnd();
    }
  }
  // The mark-sweep configuration: collection throughput on a small heap.
  jsonWorkload("listChurn");
  for (GcStrategy S : {GcStrategy::Tagged, GcStrategy::CompiledTagFree}) {
    Stats St = runOnce(wl::listChurn(200, 64), S, GcAlgorithm::MarkSweep,
                       1 << 14);
    tableCell("listChurn/ms");
    tableCell(S == GcStrategy::Tagged ? "tagged" : "tag-free");
    tableCell(St.get(StatId::VmSteps));
    tableCell(St.get(StatId::VmTagOps));
    tableCell(St.get(StatId::VmFloatBoxes));
    tableCell(St.get(StatId::HeapObjectsAllocated));
    tableEnd();
  }
  std::printf("\nExpected shape: identical step counts; the tagged model "
              "additionally executes\ntag strip/reinstate ops and boxes "
              "every float, visible in the timings below.\n\n");
}

} // namespace

int main(int argc, char **argv) {
  JsonSink Sink("mutator", argc, argv);
  printTable();
  printDispatchTable();
  benchmark::Initialize(&argc, argv);
  Sink.runBenchmarksAndWrite();
  return 0;
}
