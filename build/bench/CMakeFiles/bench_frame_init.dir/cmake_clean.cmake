file(REMOVE_RECURSE
  "CMakeFiles/bench_frame_init.dir/bench_frame_init.cpp.o"
  "CMakeFiles/bench_frame_init.dir/bench_frame_init.cpp.o.d"
  "bench_frame_init"
  "bench_frame_init.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_frame_init.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
