//===- ir/Lower.cpp -------------------------------------------------------===//

#include "ir/Lower.h"

#include <algorithm>
#include <cassert>

using namespace tfgc;

Lowerer::Lowerer(TypeContext &Ctx, SemaInfo &Sema, DiagnosticEngine &Diags)
    : Ctx(Ctx), Sema(Sema), Diags(Diags) {}

//===----------------------------------------------------------------------===//
// Function construction helpers
//===----------------------------------------------------------------------===//

IrFunction *Lowerer::newFunction(const std::string &Name) {
  auto F = std::make_unique<IrFunction>();
  F->Id = (FuncId)Fns.size();
  F->Name = Name;
  IrFunction *Raw = F.get();
  Fns.push_back(std::move(F));
  return Raw;
}

void Lowerer::pushContext(IrFunction *F) {
  auto C = std::make_unique<FnContext>();
  C->F = F;
  CtxStack.push_back(std::move(C));
}

void Lowerer::popContext() {
  finishFunction();
  CtxStack.pop_back();
}

SlotIndex Lowerer::newSlot(Type *Ty) {
  assert(Ty && "slot needs a type");
  fn().SlotTypes.push_back(Ty->resolved());
  return (SlotIndex)(fn().SlotTypes.size() - 1);
}

Instr &Lowerer::emit(Opcode Op) {
  fn().Code.emplace_back();
  Instr &I = fn().Code.back();
  I.Op = Op;
  return I;
}

LabelId Lowerer::newLabel() {
  fn().LabelTargets.push_back(0);
  return (LabelId)(fn().LabelTargets.size() - 1);
}

void Lowerer::bindLabel(LabelId L) {
  fn().LabelTargets[L] = (uint32_t)fn().Code.size();
}

LabelId Lowerer::abortLabel() {
  if (!ctx().HasAbortLabel) {
    ctx().AbortLabel = newLabel();
    ctx().HasAbortLabel = true;
  }
  return ctx().AbortLabel;
}

CallSiteId Lowerer::newSite(SiteKind Kind, uint32_t InstrIdx, SourceLoc Loc) {
  CallSiteInfo S;
  S.Id = (CallSiteId)Prog.Sites.size();
  S.Caller = fn().Id;
  S.InstrIdx = InstrIdx;
  S.Kind = Kind;
  S.Loc = Loc;
  if (Kind == SiteKind::Alloc)
    S.AllocId = Prog.NumAllocSites++;
  Prog.Sites.push_back(std::move(S));
  SiteInstMaps.emplace_back();
  return Prog.Sites.back().Id;
}

void Lowerer::finishFunction() {
  if (ctx().HasAbortLabel) {
    bindLabel(ctx().AbortLabel);
    emit(Opcode::Abort);
  }
}

void Lowerer::bindName(const std::string &Name, Binding B) {
  assert(!ctx().Scopes.empty());
  ctx().Scopes.back()[Name] = B;
}

const Lowerer::Binding *Lowerer::resolve(const std::string &Name) {
  // Current context: all binding kinds.
  for (auto It = ctx().Scopes.rbegin(); It != ctx().Scopes.rend(); ++It) {
    auto Found = It->find(Name);
    if (Found != It->end())
      return &Found->second;
  }
  // Enclosing contexts: only DirectFn bindings survive (slots must have
  // been captured).
  for (size_t C = CtxStack.size() - 1; C-- > 0;) {
    for (auto It = CtxStack[C]->Scopes.rbegin();
         It != CtxStack[C]->Scopes.rend(); ++It) {
      auto Found = It->find(Name);
      if (Found == It->end())
        continue;
      if (Found->second.K == Binding::Kind::DirectFn)
        return &Found->second;
      return nullptr; // Uncaptured outer slot: treated as unbound here.
    }
  }
  return nullptr;
}

//===----------------------------------------------------------------------===//
// Free variable scanning (over names, respecting shadowing)
//===----------------------------------------------------------------------===//

void Lowerer::patternNames(const Pattern *P,
                           std::unordered_set<std::string> &Bound) {
  if (P->Kind == PatternKind::Var)
    Bound.insert(P->Name);
  for (const PatternPtr &E : P->Elems)
    patternNames(E.get(), Bound);
}

void Lowerer::freeNamesExpr(const Expr *E,
                            std::unordered_set<std::string> &Bound,
                            std::vector<std::string> &Out,
                            std::unordered_set<std::string> &OutSet) {
  switch (E->getKind()) {
  case ExprKind::Int:
  case ExprKind::Float:
  case ExprKind::Bool:
  case ExprKind::Unit:
    return;
  case ExprKind::Var: {
    const auto *V = cast<VarExpr>(E);
    if (!Bound.count(V->Name) && OutSet.insert(V->Name).second)
      Out.push_back(V->Name);
    return;
  }
  case ExprKind::Ctor:
    for (const ExprPtr &A : cast<CtorExpr>(E)->Args)
      freeNamesExpr(A.get(), Bound, Out, OutSet);
    return;
  case ExprKind::Tuple:
    for (const ExprPtr &A : cast<TupleExpr>(E)->Elems)
      freeNamesExpr(A.get(), Bound, Out, OutSet);
    return;
  case ExprKind::If: {
    const auto *I = cast<IfExpr>(E);
    freeNamesExpr(I->Cond.get(), Bound, Out, OutSet);
    freeNamesExpr(I->Then.get(), Bound, Out, OutSet);
    freeNamesExpr(I->Else.get(), Bound, Out, OutSet);
    return;
  }
  case ExprKind::Let: {
    const auto *L = cast<LetExpr>(E);
    std::unordered_set<std::string> Inner = Bound;
    for (const DeclPtr &D : L->Decls)
      freeNamesDecl(D.get(), Inner, Out, OutSet);
    freeNamesExpr(L->Body.get(), Inner, Out, OutSet);
    return;
  }
  case ExprKind::Fn: {
    const auto *F = cast<FnExpr>(E);
    std::unordered_set<std::string> Inner = Bound;
    patternNames(F->Param.get(), Inner);
    freeNamesExpr(F->Body.get(), Inner, Out, OutSet);
    return;
  }
  case ExprKind::App: {
    const auto *A = cast<AppExpr>(E);
    freeNamesExpr(A->Fn.get(), Bound, Out, OutSet);
    for (const ExprPtr &Arg : A->Args)
      freeNamesExpr(Arg.get(), Bound, Out, OutSet);
    return;
  }
  case ExprKind::Prim:
    for (const ExprPtr &A : cast<PrimExpr>(E)->Args)
      freeNamesExpr(A.get(), Bound, Out, OutSet);
    return;
  case ExprKind::Case: {
    const auto *C = cast<CaseExpr>(E);
    freeNamesExpr(C->Scrut.get(), Bound, Out, OutSet);
    for (const CaseClause &Cl : C->Clauses) {
      std::unordered_set<std::string> Inner = Bound;
      patternNames(Cl.Pat.get(), Inner);
      freeNamesExpr(Cl.Body.get(), Inner, Out, OutSet);
    }
    return;
  }
  case ExprKind::Seq:
    for (const ExprPtr &A : cast<SeqExpr>(E)->Elems)
      freeNamesExpr(A.get(), Bound, Out, OutSet);
    return;
  case ExprKind::Annot:
    freeNamesExpr(cast<AnnotExpr>(E)->Body.get(), Bound, Out, OutSet);
    return;
  }
}

void Lowerer::freeNamesDecl(const Decl *D,
                            std::unordered_set<std::string> &Bound,
                            std::vector<std::string> &Out,
                            std::unordered_set<std::string> &OutSet) {
  switch (D->Kind) {
  case DeclKind::Datatype:
    return;
  case DeclKind::Fun: {
    for (const FunBind &B : D->Binds)
      Bound.insert(B.Name);
    for (const FunBind &B : D->Binds) {
      std::unordered_set<std::string> Inner = Bound;
      for (const PatternPtr &P : B.Params)
        patternNames(P.get(), Inner);
      freeNamesExpr(B.Body.get(), Inner, Out, OutSet);
    }
    return;
  }
  case DeclKind::Val:
    if (D->Init)
      freeNamesExpr(D->Init.get(), Bound, Out, OutSet);
    if (D->Pat)
      patternNames(D->Pat.get(), Bound);
    return;
  }
}

//===----------------------------------------------------------------------===//
// Program entry
//===----------------------------------------------------------------------===//

std::optional<IrProgram> Lowerer::lower(Program &P) {
  Prog.Types = &Ctx;

  IrFunction *Main = newFunction("main");
  Main->NumParams = 0;
  Type *MainTy = P.Main ? P.Main->Ty : Ctx.unitTy();
  Main->FunTy = Ctx.makeFun({}, MainTy->resolved());
  Prog.MainId = Main->Id;

  pushContext(Main);
  pushScope();
  for (DeclPtr &D : P.Decls)
    lowerDecl(D.get());
  SlotIndex Result =
      P.Main ? lowerExpr(P.Main.get()) : newSlot(Ctx.unitTy());
  emit(Opcode::Return).Srcs = {Result};
  popScope();
  popContext();

  if (Diags.hasErrors())
    return std::nullopt;
  if (!finalizeTypeParams())
    return std::nullopt;

  Prog.Functions.reserve(Fns.size());
  for (std::unique_ptr<IrFunction> &F : Fns)
    Prog.Functions.push_back(std::move(*F));
  return std::move(Prog);
}

//===----------------------------------------------------------------------===//
// Declarations
//===----------------------------------------------------------------------===//

void Lowerer::lowerDecl(Decl *D) {
  switch (D->Kind) {
  case DeclKind::Datatype:
    return; // Fully handled by sema.
  case DeclKind::Fun:
    lowerFunGroup(D);
    return;
  case DeclKind::Val:
    lowerValDecl(D);
    return;
  }
}

void Lowerer::lowerFunGroup(Decl *D) {
  // Names bound by the group itself.
  std::unordered_set<std::string> Bound;
  for (FunBind &B : D->Binds)
    Bound.insert(B.Name);

  // Free names of the whole group.
  std::vector<std::string> Free;
  std::unordered_set<std::string> FreeSet;
  for (FunBind &B : D->Binds) {
    std::unordered_set<std::string> Inner = Bound;
    for (PatternPtr &P : B.Params)
      patternNames(P.get(), Inner);
    freeNamesExpr(B.Body.get(), Inner, Free, FreeSet);
  }

  // A group captures if any free name resolves to a slot.
  std::vector<std::string> Captures;
  for (const std::string &Name : Free) {
    const Binding *B = resolve(Name);
    if (B && B->K == Binding::Kind::Slot)
      Captures.push_back(Name);
  }

  if (Captures.empty())
    lowerLiftedGroup(D);
  else
    lowerClosureGroup(D, Captures);
}

void Lowerer::lowerLiftedGroup(Decl *D) {
  // Create all functions and bind their names first so recursion and
  // mutual references resolve.
  std::vector<IrFunction *> Created;
  for (FunBind &B : D->Binds) {
    const TypeScheme &S = Sema.FunSchemes.at(&B);
    IrFunction *F = newFunction(B.Name);
    F->FunTy = S.Body->resolved();
    assert(F->FunTy->getKind() == TypeKind::Fun && "fun must have fun type");
    F->NumParams = (unsigned)B.Params.size();
    for (PatternPtr &P : B.Params)
      F->SlotTypes.push_back(P->Ty->resolved());
    F->TypeParams = S.Params;
    Created.push_back(F);

    Binding Bind;
    Bind.K = Binding::Kind::DirectFn;
    Bind.Fn = F->Id;
    Bind.SchemeBody = F->FunTy;
    bindName(B.Name, Bind);
  }

  for (size_t I = 0; I < D->Binds.size(); ++I) {
    FunBind &B = D->Binds[I];
    pushContext(Created[I]);
    pushScope();
    std::vector<Pattern *> Params;
    for (PatternPtr &P : B.Params)
      Params.push_back(P.get());
    lowerFunctionBody(Params, B.Body.get());
    popScope();
    popContext();
  }
}

void Lowerer::lowerClosureGroup(Decl *D,
                                const std::vector<std::string> &Captures) {
  // Captured local functions must be monomorphic: a polymorphic closure
  // value would need a typed slot for the closure itself, which rank-1
  // lowering cannot express (see DESIGN.md).
  for (FunBind &B : D->Binds) {
    const TypeScheme &S = Sema.FunSchemes.at(&B);
    if (S.isPoly()) {
      Diags.error(B.Loc,
                  "polymorphic local function '" + B.Name +
                      "' captures variables; monomorphise it or move the "
                      "captured values into parameters");
      return;
    }
  }

  // Resolve capture slots in the current function.
  std::vector<SlotIndex> CapSlots;
  std::vector<Type *> CapTypes;
  for (const std::string &Name : Captures) {
    const Binding *B = resolve(Name);
    assert(B && B->K == Binding::Kind::Slot);
    CapSlots.push_back(B->Slot);
    CapTypes.push_back(fn().SlotTypes[B->Slot]);
  }

  size_t N = D->Binds.size();
  std::vector<IrFunction *> Created;
  std::vector<Type *> FnTys;
  for (FunBind &B : D->Binds) {
    const TypeScheme &S = Sema.FunSchemes.at(&B);
    IrFunction *F = newFunction(B.Name);
    F->IsClosure = true;
    F->FunTy = S.Body->resolved();
    F->NumParams = 1 + (unsigned)B.Params.size();
    F->SlotTypes.push_back(F->FunTy); // slot 0: self.
    for (PatternPtr &P : B.Params)
      F->SlotTypes.push_back(P->Ty->resolved());
    F->EnvTypes = CapTypes;
    Created.push_back(F);
    FnTys.push_back(F->FunTy);
  }
  // Sibling fields (all group members except self) follow the captures.
  for (size_t I = 0; I < N; ++I)
    for (size_t J = 0; J < N; ++J)
      if (J != I)
        Created[I]->EnvTypes.push_back(FnTys[J]);

  // Create the closures in the parent, with unit placeholders for sibling
  // fields, then patch the cycles.
  SlotIndex UnitSlot = 0;
  if (N > 1) {
    UnitSlot = newSlot(Ctx.unitTy());
    emit(Opcode::LoadUnit).Dst = UnitSlot;
  }
  std::vector<SlotIndex> CloSlots;
  for (size_t I = 0; I < N; ++I) {
    SlotIndex C = newSlot(FnTys[I]);
    Instr &MC = emit(Opcode::MakeClosure);
    MC.Dst = C;
    MC.Callee = Created[I]->Id;
    MC.Srcs = CapSlots;
    for (size_t J = 0; J + 1 < N; ++J)
      MC.Srcs.push_back(UnitSlot);
    MC.Site = newSite(SiteKind::Alloc, (uint32_t)fn().Code.size() - 1,
                      D->Binds[I].Loc);
    CloSlots.push_back(C);
  }
  for (size_t I = 0; I < N; ++I) {
    unsigned FieldBase = (unsigned)Captures.size();
    unsigned K = 0;
    for (size_t J = 0; J < N; ++J) {
      if (J == I)
        continue;
      Instr &SC = emit(Opcode::SetClosureField);
      SC.Srcs = {CloSlots[I], CloSlots[J]};
      SC.FieldIdx = 1 + FieldBase + K; // +1 skips the code word.
      ++K;
    }
  }
  for (size_t I = 0; I < N; ++I) {
    Binding Bind;
    Bind.K = Binding::Kind::Slot;
    Bind.Slot = CloSlots[I];
    bindName(D->Binds[I].Name, Bind);
  }

  // Lower the bodies.
  for (size_t I = 0; I < N; ++I) {
    FunBind &B = D->Binds[I];
    IrFunction *F = Created[I];
    pushContext(F);
    pushScope();

    // Self-recursion goes through slot 0 (the closure itself).
    Binding Self;
    Self.K = Binding::Kind::Slot;
    Self.Slot = 0;
    bindName(B.Name, Self);

    // Copy env fields into slots and bind them.
    for (size_t K = 0; K < F->EnvTypes.size(); ++K) {
      SlotIndex S = newSlot(F->EnvTypes[K]);
      Instr &GF = emit(Opcode::GetField);
      GF.Dst = S;
      GF.Srcs = {0};
      GF.FieldIdx = (uint32_t)K + 1; // +1 skips the code word.
      Binding Bind;
      Bind.K = Binding::Kind::Slot;
      Bind.Slot = S;
      const std::string &Name = K < Captures.size()
                                    ? Captures[K]
                                    : [&] {
                                        size_t Sib = K - Captures.size();
                                        for (size_t J = 0; J < N; ++J) {
                                          if (J == I)
                                            continue;
                                          if (Sib == 0)
                                            return D->Binds[J].Name;
                                          --Sib;
                                        }
                                        return std::string();
                                      }();
      bindName(Name, Bind);
    }

    std::vector<Pattern *> Params;
    for (PatternPtr &P : B.Params)
      Params.push_back(P.get());
    lowerFunctionBody(Params, B.Body.get());
    popScope();
    popContext();
  }
}

void Lowerer::lowerValDecl(Decl *D) {
  SlotIndex V = lowerExpr(D->Init.get());
  lowerIrrefutable(D->Pat.get(), V);
}

void Lowerer::lowerFunctionBody(const std::vector<Pattern *> &Params,
                                Expr *Body) {
  unsigned FirstParam = fn().IsClosure ? 1 : 0;
  for (size_t I = 0; I < Params.size(); ++I)
    lowerIrrefutable(Params[I], (SlotIndex)(FirstParam + I));
  SlotIndex R = lowerExpr(Body);
  emit(Opcode::Return).Srcs = {R};
}

//===----------------------------------------------------------------------===//
// Patterns
//===----------------------------------------------------------------------===//

void Lowerer::lowerIrrefutable(Pattern *P, SlotIndex Scrut) {
  switch (P->Kind) {
  case PatternKind::Wild:
    return;
  case PatternKind::Var: {
    Binding B;
    B.K = Binding::Kind::Slot;
    B.Slot = Scrut;
    bindName(P->Name, B);
    return;
  }
  default:
    lowerPatternTest(P, Scrut, abortLabel());
    return;
  }
}

void Lowerer::lowerPatternTest(Pattern *P, SlotIndex Scrut, LabelId Fail) {
  switch (P->Kind) {
  case PatternKind::Wild:
    return;
  case PatternKind::Var: {
    Binding B;
    B.K = Binding::Kind::Slot;
    B.Slot = Scrut;
    bindName(P->Name, B);
    return;
  }
  case PatternKind::Int:
  case PatternKind::Bool: {
    SlotIndex C = newSlot(P->Kind == PatternKind::Int ? Ctx.intTy()
                                                      : Ctx.boolTy());
    Instr &LI = emit(P->Kind == PatternKind::Int ? Opcode::LoadInt
                                                 : Opcode::LoadBool);
    LI.Dst = C;
    LI.IntImm = P->Kind == PatternKind::Int ? P->IntValue
                                            : (P->BoolValue ? 1 : 0);
    SlotIndex T = newSlot(Ctx.boolTy());
    Instr &Cmp = emit(Opcode::Prim);
    Cmp.Prim = PrimVal::Eq;
    Cmp.Dst = T;
    Cmp.Srcs = {Scrut, C};
    LabelId Cont = newLabel();
    Instr &Br = emit(Opcode::Branch);
    Br.Srcs = {T};
    Br.Label = Cont;
    Br.Label2 = Fail;
    bindLabel(Cont);
    return;
  }
  case PatternKind::Tuple: {
    if (P->Elems.empty())
      return; // unit pattern always matches
    Type *TupTy = P->Ty->resolved();
    for (size_t I = 0; I < P->Elems.size(); ++I) {
      SlotIndex F = newSlot(P->Elems[I]->Ty);
      Instr &GF = emit(Opcode::GetField);
      GF.Dst = F;
      GF.Srcs = {Scrut};
      GF.FieldIdx = (uint32_t)I;
      lowerPatternTest(P->Elems[I].get(), F, Fail);
    }
    (void)TupTy;
    return;
  }
  case PatternKind::Ctor: {
    auto It = Sema.CtorRefs.find(P);
    assert(It != Sema.CtorRefs.end() && "unresolved constructor pattern");
    const ResolvedCtor &RC = It->second;
    if (RC.Info->Ctors.size() > 1) {
      SlotIndex Tag = newSlot(Ctx.intTy());
      Instr &GT = emit(Opcode::GetTag);
      GT.Dst = Tag;
      GT.Srcs = {Scrut};
      GT.Data = RC.Info;
      SlotIndex C = newSlot(Ctx.intTy());
      Instr &LI = emit(Opcode::LoadInt);
      LI.Dst = C;
      LI.IntImm = (int64_t)RC.Index;
      SlotIndex T = newSlot(Ctx.boolTy());
      Instr &Cmp = emit(Opcode::Prim);
      Cmp.Prim = PrimVal::Eq;
      Cmp.Dst = T;
      Cmp.Srcs = {Tag, C};
      LabelId Cont = newLabel();
      Instr &Br = emit(Opcode::Branch);
      Br.Srcs = {T};
      Br.Label = Cont;
      Br.Label2 = Fail;
      bindLabel(Cont);
    }
    for (size_t I = 0; I < P->Elems.size(); ++I) {
      SlotIndex F = newSlot(P->Elems[I]->Ty);
      Instr &GF = emit(Opcode::GetField);
      GF.Dst = F;
      GF.Srcs = {Scrut};
      GF.FieldIdx = (uint32_t)I + 1; // +1 skips the discriminant.
      GF.Data = RC.Info;
      lowerPatternTest(P->Elems[I].get(), F, Fail);
    }
    return;
  }
  }
}

//===----------------------------------------------------------------------===//
// Expressions
//===----------------------------------------------------------------------===//

SlotIndex Lowerer::lowerExpr(Expr *E) {
  switch (E->getKind()) {
  case ExprKind::Int: {
    SlotIndex S = newSlot(E->Ty);
    Instr &I = emit(Opcode::LoadInt);
    I.Dst = S;
    I.IntImm = cast<IntExpr>(E)->Value;
    return S;
  }
  case ExprKind::Float: {
    SlotIndex S = newSlot(E->Ty);
    Instr &I = emit(Opcode::LoadFloat);
    I.Dst = S;
    I.FloatImm = cast<FloatExpr>(E)->Value;
    // Boxed under the tagged model, so this is an allocation site.
    I.Site = newSite(SiteKind::Alloc, (uint32_t)fn().Code.size() - 1, E->Loc);
    return S;
  }
  case ExprKind::Bool: {
    SlotIndex S = newSlot(E->Ty);
    Instr &I = emit(Opcode::LoadBool);
    I.Dst = S;
    I.IntImm = cast<BoolExpr>(E)->Value ? 1 : 0;
    return S;
  }
  case ExprKind::Unit: {
    SlotIndex S = newSlot(E->Ty);
    emit(Opcode::LoadUnit).Dst = S;
    return S;
  }
  case ExprKind::Var: {
    auto *V = cast<VarExpr>(E);
    const Binding *B = resolve(V->Name);
    if (!B) {
      Diags.error(V->Loc, "unbound variable '" + V->Name +
                              "' (note: 'real' and constructors are not "
                              "first-class values)");
      SlotIndex S = newSlot(E->Ty ? E->Ty : Ctx.unitTy());
      emit(Opcode::LoadUnit).Dst = S;
      return S;
    }
    if (B->K == Binding::Kind::Slot)
      return B->Slot;
    return materializeStub(B->Fn, V->Ty, V->Loc);
  }
  case ExprKind::Ctor: {
    auto *C = cast<CtorExpr>(E);
    auto It = Sema.CtorRefs.find(C);
    assert(It != Sema.CtorRefs.end());
    const ResolvedCtor &RC = It->second;
    std::vector<SlotIndex> Args;
    for (ExprPtr &A : C->Args)
      Args.push_back(lowerExpr(A.get()));
    SlotIndex S = newSlot(E->Ty);
    Instr &I = emit(Opcode::MakeData);
    I.Dst = S;
    I.Srcs = std::move(Args);
    I.Data = RC.Info;
    I.CtorIdx = RC.Index;
    if (!I.Srcs.empty())
      I.Site =
          newSite(SiteKind::Alloc, (uint32_t)fn().Code.size() - 1, C->Loc);
    return S;
  }
  case ExprKind::Tuple: {
    auto *T = cast<TupleExpr>(E);
    std::vector<SlotIndex> Elems;
    for (ExprPtr &El : T->Elems)
      Elems.push_back(lowerExpr(El.get()));
    SlotIndex S = newSlot(E->Ty);
    Instr &I = emit(Opcode::MakeTuple);
    I.Dst = S;
    I.Srcs = std::move(Elems);
    I.Site = newSite(SiteKind::Alloc, (uint32_t)fn().Code.size() - 1, T->Loc);
    return S;
  }
  case ExprKind::If: {
    auto *I = cast<IfExpr>(E);
    SlotIndex Cond = lowerExpr(I->Cond.get());
    SlotIndex Res = newSlot(E->Ty);
    LabelId ThenL = newLabel(), ElseL = newLabel(), EndL = newLabel();
    Instr &Br = emit(Opcode::Branch);
    Br.Srcs = {Cond};
    Br.Label = ThenL;
    Br.Label2 = ElseL;
    bindLabel(ThenL);
    SlotIndex T = lowerExpr(I->Then.get());
    Instr &MT = emit(Opcode::Move);
    MT.Dst = Res;
    MT.Srcs = {T};
    emit(Opcode::Jump).Label = EndL;
    bindLabel(ElseL);
    SlotIndex El = lowerExpr(I->Else.get());
    Instr &ME = emit(Opcode::Move);
    ME.Dst = Res;
    ME.Srcs = {El};
    emit(Opcode::Jump).Label = EndL;
    bindLabel(EndL);
    return Res;
  }
  case ExprKind::Let: {
    auto *L = cast<LetExpr>(E);
    pushScope();
    for (DeclPtr &D : L->Decls)
      lowerDecl(D.get());
    SlotIndex R = lowerExpr(L->Body.get());
    popScope();
    return R;
  }
  case ExprKind::Fn:
    return lowerLambda(cast<FnExpr>(E));
  case ExprKind::App:
    return lowerApp(cast<AppExpr>(E));
  case ExprKind::Prim:
    return lowerPrim(cast<PrimExpr>(E));
  case ExprKind::Case:
    return lowerCase(cast<CaseExpr>(E));
  case ExprKind::Seq: {
    auto *S = cast<SeqExpr>(E);
    SlotIndex R = 0;
    for (ExprPtr &El : S->Elems)
      R = lowerExpr(El.get());
    return R;
  }
  case ExprKind::Annot:
    return lowerExpr(cast<AnnotExpr>(E)->Body.get());
  }
  return 0;
}

SlotIndex Lowerer::lowerPrim(PrimExpr *E) {
  switch (E->Op) {
  case PrimOp::RefNew: {
    SlotIndex V = lowerExpr(E->Args[0].get());
    SlotIndex S = newSlot(E->Ty);
    Instr &I = emit(Opcode::MakeRef);
    I.Dst = S;
    I.Srcs = {V};
    I.Site = newSite(SiteKind::Alloc, (uint32_t)fn().Code.size() - 1, E->Loc);
    return S;
  }
  case PrimOp::RefGet: {
    SlotIndex R = lowerExpr(E->Args[0].get());
    SlotIndex S = newSlot(E->Ty);
    Instr &I = emit(Opcode::RefLoad);
    I.Dst = S;
    I.Srcs = {R};
    return S;
  }
  case PrimOp::RefSet: {
    SlotIndex R = lowerExpr(E->Args[0].get());
    SlotIndex V = lowerExpr(E->Args[1].get());
    Instr &I = emit(Opcode::RefStore);
    I.Srcs = {R, V};
    SlotIndex S = newSlot(Ctx.unitTy());
    emit(Opcode::LoadUnit).Dst = S;
    return S;
  }
  case PrimOp::Print: {
    SlotIndex V = lowerExpr(E->Args[0].get());
    emit(Opcode::Print).Srcs = {V};
    SlotIndex S = newSlot(Ctx.unitTy());
    emit(Opcode::LoadUnit).Dst = S;
    return S;
  }
  default:
    break;
  }

  PrimVal PV;
  switch (E->Op) {
  case PrimOp::Add: PV = PrimVal::Add; break;
  case PrimOp::Sub: PV = PrimVal::Sub; break;
  case PrimOp::Mul: PV = PrimVal::Mul; break;
  case PrimOp::Div: PV = PrimVal::Div; break;
  case PrimOp::Mod: PV = PrimVal::Mod; break;
  case PrimOp::Neg: PV = PrimVal::Neg; break;
  case PrimOp::Lt:  PV = PrimVal::Lt; break;
  case PrimOp::Le:  PV = PrimVal::Le; break;
  case PrimOp::Gt:  PV = PrimVal::Gt; break;
  case PrimOp::Ge:  PV = PrimVal::Ge; break;
  case PrimOp::Eq:  PV = PrimVal::Eq; break;
  case PrimOp::Ne:  PV = PrimVal::Ne; break;
  case PrimOp::Not: PV = PrimVal::Not; break;
  case PrimOp::FAdd: PV = PrimVal::FAdd; break;
  case PrimOp::FSub: PV = PrimVal::FSub; break;
  case PrimOp::FMul: PV = PrimVal::FMul; break;
  case PrimOp::FDiv: PV = PrimVal::FDiv; break;
  case PrimOp::FNeg: PV = PrimVal::FNeg; break;
  case PrimOp::FLt:  PV = PrimVal::FLt; break;
  case PrimOp::FEq:  PV = PrimVal::FEq; break;
  case PrimOp::IntToFloat: PV = PrimVal::IntToFloat; break;
  default:
    PV = PrimVal::Add;
    break;
  }

  std::vector<SlotIndex> Args;
  for (ExprPtr &A : E->Args)
    Args.push_back(lowerExpr(A.get()));
  SlotIndex S = newSlot(E->Ty);
  Instr &I = emit(Opcode::Prim);
  I.Prim = PV;
  I.Dst = S;
  I.Srcs = std::move(Args);
  // Float results are boxed under the tagged model, so float-producing
  // primitives are allocation sites.
  switch (PV) {
  case PrimVal::FAdd:
  case PrimVal::FSub:
  case PrimVal::FMul:
  case PrimVal::FDiv:
  case PrimVal::FNeg:
  case PrimVal::IntToFloat:
    I.Site = newSite(SiteKind::Alloc, (uint32_t)fn().Code.size() - 1, E->Loc);
    break;
  default:
    break;
  }
  return S;
}

SlotIndex Lowerer::lowerApp(AppExpr *A) {
  if (auto *V = dyn_cast<VarExpr>(A->Fn.get())) {
    const Binding *B = resolve(V->Name);
    if (!B && V->Name == "real") {
      SlotIndex Arg = lowerExpr(A->Args[0].get());
      SlotIndex S = newSlot(A->Ty);
      Instr &I = emit(Opcode::Prim);
      I.Prim = PrimVal::IntToFloat;
      I.Dst = S;
      I.Srcs = {Arg};
      I.Site =
          newSite(SiteKind::Alloc, (uint32_t)fn().Code.size() - 1, A->Loc);
      return S;
    }
    if (B && B->K == Binding::Kind::DirectFn) {
      std::vector<SlotIndex> Args;
      for (ExprPtr &Arg : A->Args)
        Args.push_back(lowerExpr(Arg.get()));
      SlotIndex S = newSlot(A->Ty);
      Instr &I = emit(Opcode::Call);
      I.Dst = S;
      I.Srcs = std::move(Args);
      I.Callee = B->Fn;
      CallSiteId Site = newSite(SiteKind::Direct,
                                (uint32_t)fn().Code.size() - 1);
      I.Site = Site;
      Prog.Sites[Site].Callee = B->Fn;
      matchInstantiation(B->SchemeBody, V->Ty, SiteInstMaps[Site]);
      return S;
    }
  }

  // Indirect call through a closure value.
  SlotIndex Clo = lowerExpr(A->Fn.get());
  std::vector<SlotIndex> Srcs{Clo};
  for (ExprPtr &Arg : A->Args)
    Srcs.push_back(lowerExpr(Arg.get()));
  SlotIndex S = newSlot(A->Ty);
  Instr &I = emit(Opcode::CallIndirect);
  I.Dst = S;
  I.Srcs = std::move(Srcs);
  CallSiteId Site = newSite(SiteKind::Indirect,
                            (uint32_t)fn().Code.size() - 1);
  I.Site = Site;
  Prog.Sites[Site].ClosureTy = A->Fn->Ty->resolved();
  return S;
}

SlotIndex Lowerer::lowerCase(CaseExpr *C) {
  SlotIndex Scrut = lowerExpr(C->Scrut.get());
  SlotIndex Res = newSlot(C->Ty);
  LabelId EndL = newLabel();
  for (size_t I = 0; I < C->Clauses.size(); ++I) {
    CaseClause &Cl = C->Clauses[I];
    bool Last = I + 1 == C->Clauses.size();
    LabelId FailL = Last ? abortLabel() : newLabel();
    pushScope();
    lowerPatternTest(Cl.Pat.get(), Scrut, FailL);
    SlotIndex R = lowerExpr(Cl.Body.get());
    Instr &M = emit(Opcode::Move);
    M.Dst = Res;
    M.Srcs = {R};
    emit(Opcode::Jump).Label = EndL;
    popScope();
    if (!Last)
      bindLabel(FailL);
  }
  bindLabel(EndL);
  return Res;
}

SlotIndex Lowerer::lowerLambda(FnExpr *F) {
  // Determine captures.
  std::unordered_set<std::string> Bound;
  patternNames(F->Param.get(), Bound);
  std::vector<std::string> Free;
  std::unordered_set<std::string> FreeSet;
  freeNamesExpr(F->Body.get(), Bound, Free, FreeSet);

  std::vector<std::string> CapNames;
  std::vector<SlotIndex> CapSlots;
  std::vector<Type *> CapTypes;
  for (const std::string &Name : Free) {
    const Binding *B = resolve(Name);
    if (B && B->K == Binding::Kind::Slot) {
      CapNames.push_back(Name);
      CapSlots.push_back(B->Slot);
      CapTypes.push_back(fn().SlotTypes[B->Slot]);
    }
  }

  IrFunction *L = newFunction("lambda@" + std::to_string(F->Loc.Line) + ":" +
                              std::to_string(F->Loc.Col));
  L->IsClosure = true;
  L->FunTy = F->Ty->resolved();
  L->NumParams = 2; // self + parameter
  L->SlotTypes.push_back(L->FunTy);
  L->SlotTypes.push_back(F->Param->Ty->resolved());
  L->EnvTypes = CapTypes;

  pushContext(L);
  pushScope();
  for (size_t K = 0; K < CapNames.size(); ++K) {
    SlotIndex S = newSlot(CapTypes[K]);
    Instr &GF = emit(Opcode::GetField);
    GF.Dst = S;
    GF.Srcs = {0};
    GF.FieldIdx = (uint32_t)K + 1;
    Binding Bnd;
    Bnd.K = Binding::Kind::Slot;
    Bnd.Slot = S;
    bindName(CapNames[K], Bnd);
  }
  lowerFunctionBody({F->Param.get()}, F->Body.get());
  popScope();
  popContext();

  SlotIndex S = newSlot(F->Ty);
  Instr &MC = emit(Opcode::MakeClosure);
  MC.Dst = S;
  MC.Callee = L->Id;
  MC.Srcs = CapSlots;
  MC.Site = newSite(SiteKind::Alloc, (uint32_t)fn().Code.size() - 1, F->Loc);
  return S;
}

FuncId Lowerer::getStub(FuncId Target) {
  auto It = StubOf.find(Target);
  if (It != StubOf.end())
    return It->second;

  IrFunction *T = Fns[Target].get();
  IrFunction *S = newFunction(T->Name + "$stub");
  StubOf[Target] = S->Id;
  S->IsClosure = true;
  S->FunTy = T->FunTy;
  Type *FunTy = T->FunTy->resolved();
  assert(FunTy->getKind() == TypeKind::Fun);
  S->NumParams = 1 + FunTy->numArgs();
  S->SlotTypes.push_back(S->FunTy);
  for (Type *P : FunTy->args())
    S->SlotTypes.push_back(P->resolved());
  S->TypeParams = T->TypeParams;

  pushContext(S);
  SlotIndex R = newSlot(FunTy->result());
  Instr &C = emit(Opcode::Call);
  C.Dst = R;
  C.Callee = Target;
  for (unsigned I = 0; I < FunTy->numArgs(); ++I)
    C.Srcs.push_back(1 + I);
  CallSiteId Site = newSite(SiteKind::Direct, 0);
  C.Site = Site;
  Prog.Sites[Site].Callee = Target;
  // Empty instantiation map: every callee parameter defaults to identity,
  // which is exactly right — the stub shares the target's type parameters.
  emit(Opcode::Return).Srcs = {R};
  popContext();
  return S->Id;
}

SlotIndex Lowerer::materializeStub(FuncId Target, Type *UseTy,
                                   SourceLoc Loc) {
  FuncId Stub = getStub(Target);
  SlotIndex S = newSlot(UseTy);
  Instr &MC = emit(Opcode::MakeClosure);
  MC.Dst = S;
  MC.Callee = Stub;
  MC.Site = newSite(SiteKind::Alloc, (uint32_t)fn().Code.size() - 1, Loc);
  return S;
}

//===----------------------------------------------------------------------===//
// Instantiation matching and finalization
//===----------------------------------------------------------------------===//

void Lowerer::matchInstantiation(Type *SchemeTy, Type *UseTy,
                                 std::unordered_map<Type *, Type *> &Map) {
  SchemeTy = SchemeTy->resolved();
  UseTy = UseTy->resolved();
  if (SchemeTy->isVar()) {
    if (SchemeTy->isRigid() && !Map.count(SchemeTy))
      Map[SchemeTy] = UseTy;
    return;
  }
  if (SchemeTy->getKind() != UseTy->getKind())
    return;
  for (unsigned I = 0; I < SchemeTy->numArgs() && I < UseTy->numArgs(); ++I)
    matchInstantiation(SchemeTy->arg(I), UseTy->arg(I), Map);
  if (SchemeTy->getKind() == TypeKind::Fun)
    matchInstantiation(SchemeTy->result(), UseTy->result(), Map);
}

bool Lowerer::finalizeTypeParams() {
  auto AppendMissing = [&](IrFunction &F, Type *T,
                           std::unordered_set<Type *> &Have) {
    std::vector<Type *> Rigids;
    Ctx.collectRigidVars(T, Rigids);
    for (Type *R : Rigids) {
      // Datatype parameter placeholders never leak into slot types.
      if (Have.insert(R).second)
        F.TypeParams.push_back(R);
    }
  };

  std::vector<std::unordered_set<Type *>> Have(Fns.size());
  for (std::unique_ptr<IrFunction> &FP : Fns) {
    IrFunction &F = *FP;
    auto &H = Have[F.Id];
    for (Type *P : F.TypeParams)
      H.insert(P);
    if (F.FunTy)
      AppendMissing(F, F.FunTy, H);
    for (Type *T : F.EnvTypes)
      AppendMissing(F, T, H);
    for (Type *T : F.SlotTypes)
      AppendMissing(F, T, H);
  }

  // Propagate through call sites to a fixpoint: a caller must know every
  // rigid var it passes to a callee.
  bool Changed = true;
  while (Changed) {
    Changed = false;
    for (CallSiteInfo &S : Prog.Sites) {
      if (S.Kind != SiteKind::Direct)
        continue;
      IrFunction &Caller = *Fns[S.Caller];
      IrFunction &Callee = *Fns[S.Callee];
      auto &Map = SiteInstMaps[S.Id];
      auto &H = Have[Caller.Id];
      for (Type *P : Callee.TypeParams) {
        auto It = Map.find(P);
        Type *Inst = It == Map.end() ? P : It->second;
        std::vector<Type *> Rigids;
        Ctx.collectRigidVars(Inst, Rigids);
        for (Type *R : Rigids) {
          if (H.insert(R).second) {
            Caller.TypeParams.push_back(R);
            Changed = true;
          }
        }
      }
    }
  }

  // Materialize per-site instantiation vectors aligned with each callee's
  // final TypeParams.
  for (CallSiteInfo &S : Prog.Sites) {
    if (S.Kind != SiteKind::Direct)
      continue;
    IrFunction &Callee = *Fns[S.Callee];
    auto &Map = SiteInstMaps[S.Id];
    S.CalleeTypeInst.clear();
    for (Type *P : Callee.TypeParams) {
      auto It = Map.find(P);
      S.CalleeTypeInst.push_back(It == Map.end() ? P : It->second);
    }
  }
  return true;
}
