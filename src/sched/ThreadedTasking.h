//===- sched/ThreadedTasking.h - OS-thread task runtime ---------*- C++ -*-===//
///
/// \file
/// The real-thread sibling of tasking/TaskingRuntime: the same N-tasks-
/// one-heap model (paper section 4), but each task runs on its own
/// std::thread instead of a round-robin slice. Three pieces make that
/// safe:
///
///  * SafepointCoordinator — mutators poll a shared stop flag through the
///    VM's unified fuel counter and park at GC points with their stacks
///    walkable; the last to park runs the collection (sched/Safepoint.h);
///  * per-thread TLABs — the allocation fast path bumps a private window
///    (sched/Tlab.h) refilled with a CAS off the shared nursery cursor,
///    so mutators never contend on a lock to allocate;
///  * per-task counter shards — every VM writes its own StatsShard with
///    plain stores; shards are only folded at safepoints (support/
///    Epoch.h), which here means inside the world-stopped pause.
///
/// Interface-compatible with TaskingRuntime (spawnInt / runAll /
/// results) so the driver and benches can switch on --threads. The
/// cooperative runtime remains the --threads=1 semantics reference: its
/// logical counters are bit-identical to the pre-thread scheduler.
///
//===----------------------------------------------------------------------===//

#ifndef TFGC_SCHED_THREADEDTASKING_H
#define TFGC_SCHED_THREADEDTASKING_H

#include "sched/Safepoint.h"
#include "sched/Tlab.h"
#include "tasking/Tasking.h"

#include <memory>
#include <string>
#include <vector>

namespace tfgc {

class ThreadedRuntime : public GcCoordinator {
public:
  /// Arms the collector's mutator-parallel mode (remset buffering and
  /// mark-sweep allocation go behind a lock; TLAB refill goes CAS).
  ThreadedRuntime(const IrProgram &Prog, const CodeImage &Img,
                  TypeContext &Types, Collector &Col, TaskingOptions Opts);

  /// Adds a task executing \p Entry with raw integer arguments. Must be
  /// called before runAll(): the VM (and thereby its counter shard) is
  /// constructed here, on the launching thread, so the shard vector never
  /// mutates while mutator threads run.
  void spawnInt(FuncId Entry, const std::vector<int64_t> &Args);

  /// Starts one OS thread per task, joins them all, then publishes the
  /// end-of-run stats with the world quiescent. Returns false if any
  /// task failed.
  bool runAll();

  const std::vector<TaskResult> &results() const { return Results; }
  Stats &stats() { return Col.stats(); }

  /// Completed handshake epochs (== world stops; monotone).
  uint64_t gcEpochs() const { return Coord ? Coord->epoch() : 0; }

  // GcCoordinator — polled lock-free from every VM's fuel counter:
  bool gcPending() const override { return Coord && Coord->pending(); }
  void requestGc(size_t NeedWords) override;

private:
  const IrProgram &Prog;
  const CodeImage &Img;
  TypeContext &Types;
  Collector &Col;
  TaskingOptions Opts;

  struct Task {
    /// Owned out-of-line so the window's address is stable across vector
    /// growth (the VM holds a pointer to it in its VmOptions).
    std::unique_ptr<Tlab> TaskTlab;
    std::unique_ptr<Vm> Machine;
    /// Set by the owning thread before it leaves the rendezvous set; read
    /// only under the coordinator lock (root-set construction), which the
    /// exiting thread takes right after the store.
    bool Done = false;
    /// Request-to-park delay per handshake this task took part in.
    LogHistogram StopDelayHist;
    /// This task's flight ring (null when not recording); the owning
    /// thread is its only producer — VM epochs, TLAB refills, GC
    /// requests, park/resume, start/exit all land here.
    FlightRing *Flight = nullptr;
    /// Stable storage for Stats::setThreadLabel ("mutator-<i>").
    std::string Label;
  };
  std::vector<Task> Tasks;
  std::vector<TaskResult> Results;
  /// Decoded once on the launching thread; every VM executes this stream.
  DecodedProgram Decoded;
  /// Built in runAll() once the rendezvous population is known.
  std::unique_ptr<SafepointCoordinator> Coord;
  /// The task that completed the most recent rendezvous (parked last or
  /// handed the collection off on exit). Written under the coordinator
  /// lock; read with the world quiescent (publishTaskStats). Published as
  /// the sched.last_parker_task gauge so /metrics names the straggler.
  uint64_t LastParkerTask = UINT64_MAX;

  void threadMain(size_t Idx);
  /// The collection thunk: runs with every live mutator parked and the
  /// coordinator lock held. Builds the root set from the unfinished
  /// tasks, retires every TLAB (the collection is about to reuse the
  /// space under them), and collects.
  void collectWorld(size_t NeedWords, uint64_t StopDelayNs);
  /// task.<i>.mutator_steps / .world_stop_delay_* / .tlab_*; runs with
  /// the world quiescent — after the final join, and inside each pause
  /// when an epoch aggregator is attached (live /metrics per-task rows).
  void publishTaskStats();
};

} // namespace tfgc

#endif // TFGC_SCHED_THREADEDTASKING_H
