#!/usr/bin/env python3
"""Sanity-checks a tfgc --trace-out / --stats-json pair.

Asserts that the Chrome trace is valid JSON, that it contains one
gc.collection event per collection, and that the per-phase span durations
sum to within 5% of the telemetry pause total (the spans are a partition
of the pause; see DESIGN.md section 5, "Telemetry layer").

Usage: check_trace.py TRACE.json STATS.json
"""

import json
import sys


def main() -> int:
    if len(sys.argv) != 3:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    trace_path, stats_path = sys.argv[1], sys.argv[2]
    with open(trace_path) as f:
        trace = json.load(f)
    with open(stats_path) as f:
        stats = json.load(f)

    events = trace["traceEvents"]
    collections = [e for e in events if e.get("name") == "gc.collection"]
    phases = [e for e in events if e.get("cat") == "gc.phase"]
    n = stats["collections"]
    assert len(collections) == n, (
        f"trace has {len(collections)} gc.collection events, "
        f"stats report {n} collections")
    assert phases, "trace has no gc.phase events"

    # Trace ts/dur are microseconds (with ns as the fractional part);
    # histogram sums are nanoseconds.
    phase_ns = round(sum(e["dur"] for e in phases) * 1000)
    pause_ns = stats["pause_histogram"]["sum"]
    assert pause_ns > 0, "no pause time recorded"
    ratio = phase_ns / pause_ns
    print(f"collections={n} phase_ns={phase_ns} pause_ns={pause_ns} "
          f"coverage={ratio:.4f}")
    assert 0.95 <= ratio <= 1.0001, (
        f"phase spans cover {ratio:.2%} of the pause, want within 5%")

    # The census must agree with the visit counters (verification off).
    census_objs = sum(k["objects"] for k in stats["census_totals"].values())
    counted = stats["counters"].get("gc.objects_visited", 0)
    assert census_objs == counted, (
        f"census objects {census_objs} != gc.objects_visited {counted}")
    print("ok")
    return 0


if __name__ == "__main__":
    sys.exit(main())
