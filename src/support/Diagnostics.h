//===- support/Diagnostics.h - Diagnostic collection ------------*- C++ -*-===//
///
/// \file
/// A small diagnostics engine. The library never throws; every fallible
/// phase reports here and returns an empty optional on failure.
///
//===----------------------------------------------------------------------===//

#ifndef TFGC_SUPPORT_DIAGNOSTICS_H
#define TFGC_SUPPORT_DIAGNOSTICS_H

#include "support/SourceLoc.h"

#include <string>
#include <vector>

namespace tfgc {

enum class DiagSeverity { Note, Warning, Error };

/// One reported diagnostic.
struct Diagnostic {
  DiagSeverity Severity;
  SourceLoc Loc;
  std::string Message;
};

/// Collects diagnostics produced by the front end, type checker, and the
/// GC-metadata generators. Error counts gate pipeline progress.
class DiagnosticEngine {
public:
  void error(SourceLoc Loc, std::string Message);
  void warning(SourceLoc Loc, std::string Message);
  void note(SourceLoc Loc, std::string Message);

  bool hasErrors() const { return NumErrors != 0; }
  unsigned errorCount() const { return NumErrors; }
  const std::vector<Diagnostic> &diagnostics() const { return Diags; }

  /// Renders all diagnostics as "error: 3:14: message" lines.
  std::string render() const;

  void clear();

private:
  std::vector<Diagnostic> Diags;
  unsigned NumErrors = 0;
};

} // namespace tfgc

#endif // TFGC_SUPPORT_DIAGNOSTICS_H
