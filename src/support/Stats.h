//===- support/Stats.h - Statistic counters ---------------------*- C++ -*-===//
///
/// \file
/// Counters the collectors, the VM, and the tasking runtime record for the
/// experiments (pause times, bytes copied, chain-walk counts, suspension
/// checks).
///
/// The hot trace path increments counters for *every object and field
/// visited*, so the well-known counters are an enum (StatId) indexed into a
/// flat uint64_t array: add/set/max/get are O(1) array operations with no
/// string hashing and no map nodes. The string-keyed API remains as a thin
/// compatibility shim — fixed names resolve (by binary search over the
/// static name table) to the same slots the StatId overloads use, and
/// genuinely dynamic names fall back to an ordered side map. render()
/// output is byte-identical to the historical std::map implementation:
/// every touched counter, in name order.
///
//===----------------------------------------------------------------------===//

#ifndef TFGC_SUPPORT_STATS_H
#define TFGC_SUPPORT_STATS_H

#include <array>
#include <cstdint>
#include <map>
#include <string>
#include <string_view>

namespace tfgc {

/// Every statically known counter. Enumerators are kept in alphabetical
/// order of their string names so render() can merge fixed and dynamic
/// counters with a single two-finger walk (see Stats::render).
enum class StatId : uint16_t {
  GcBarrierOps,              // gc.barrier_ops
  GcBytesReclaimed,          // gc.bytes_reclaimed
  GcChainSteps,              // gc.chain_steps
  GcCollections,             // gc.collections
  GcCompiledActions,         // gc.compiled_actions
  GcDescSteps,               // gc.desc_steps
  GcFramesTraced,            // gc.frames_traced
  GcGlogerDummies,           // gc.gloger_dummies
  GcHeapGrowths,             // gc.heap_growths
  GcMajorCollections,        // gc.major_collections
  GcMinorCollections,        // gc.minor_collections
  GcObjectsVisited,          // gc.objects_visited
  GcPauseNsMax,              // gc.pause_ns_max
  GcPauseNsP50,              // gc.pause_ns_p50
  GcPauseNsP90,              // gc.pause_ns_p90
  GcPauseNsP99,              // gc.pause_ns_p99
  GcPauseNsTotal,            // gc.pause_ns_total
  GcPromotedWords,           // gc.promoted_words
  GcPtrReversalSteps,        // gc.ptr_reversal_steps
  GcRemsetEntries,           // gc.remset_entries
  GcSlotsTraced,             // gc.slots_traced
  GcTgCacheHits,             // gc.tg_cache_hits
  GcTgCacheMisses,           // gc.tg_cache_misses
  GcTgMemoHits,              // gc.tg_memo_hits
  GcTgNodes,                 // gc.tg_nodes
  GcTgSteps,                 // gc.tg_steps
  GcVerifyPasses,            // gc.verify_passes
  GcVerifyViolations,        // gc.verify_violations
  GcWordsVisited,            // gc.words_visited
  HeapBytesAllocatedTotal,   // heap.bytes_allocated_total
  HeapCapacityBytes,         // heap.capacity_bytes
  HeapObjectsAllocated,      // heap.objects_allocated
  HeapUsedBytes,             // heap.used_bytes
  TaskContextSwitches,       // task.context_switches
  TaskGcRequests,            // task.gc_requests
  TaskSpawned,               // task.spawned
  TaskStepsToWorldStopMax,   // task.steps_to_world_stop_max
  TaskStepsToWorldStopTotal, // task.steps_to_world_stop_total
  TaskSuspendChecks,         // task.suspend_checks
  TaskWorldStops,            // task.world_stops
  VmCalls,                   // vm.calls
  VmFloatBoxes,              // vm.float_boxes
  VmFrameWordsZeroed,        // vm.frame_words_zeroed
  VmMaxFrames,               // vm.max_frames
  VmMaxSlotWords,            // vm.max_slot_words
  VmSteps,                   // vm.steps
  VmSuperinstructions,       // vm.superinstructions_executed
  VmTagOps,                  // vm.tag_ops
  VmTailCalls,               // vm.tail_calls

  NumIds
};

class Stats {
public:
  static constexpr size_t NumFixed = (size_t)StatId::NumIds;

  /// The stable string name of \p Id (e.g. "gc.objects_visited").
  static std::string_view name(StatId Id);

  /// Resolves \p Name to its StatId, or StatId::NumIds for dynamic names.
  static StatId idForName(std::string_view Name);

  // -- O(1) fast path -------------------------------------------------------
  void add(StatId Id, uint64_t Delta = 1) {
    Fixed[(size_t)Id] += Delta;
    touch(Id);
  }
  void set(StatId Id, uint64_t Value) {
    Fixed[(size_t)Id] = Value;
    touch(Id);
  }
  void max(StatId Id, uint64_t Value) {
    uint64_t &Slot = Fixed[(size_t)Id];
    if (Value > Slot)
      Slot = Value;
    touch(Id);
  }
  uint64_t get(StatId Id) const { return Fixed[(size_t)Id]; }
  bool has(StatId Id) const {
    return (Touched[(size_t)Id >> 6] >> ((size_t)Id & 63)) & 1;
  }

  // -- String compatibility shim --------------------------------------------
  // Fixed names land in the same slots as their StatId; unknown names go
  // to an ordered side map so ad-hoc counters still work.
  void add(const std::string &Name, uint64_t Delta = 1) {
    StatId Id = idForName(Name);
    if (Id != StatId::NumIds)
      add(Id, Delta);
    else
      Dynamic[Name] += Delta;
  }
  void set(const std::string &Name, uint64_t Value) {
    StatId Id = idForName(Name);
    if (Id != StatId::NumIds)
      set(Id, Value);
    else
      Dynamic[Name] = Value;
  }
  void max(const std::string &Name, uint64_t Value) {
    StatId Id = idForName(Name);
    if (Id != StatId::NumIds) {
      max(Id, Value);
      return;
    }
    uint64_t &Slot = Dynamic[Name];
    if (Value > Slot)
      Slot = Value;
  }
  uint64_t get(const std::string &Name) const {
    StatId Id = idForName(Name);
    if (Id != StatId::NumIds)
      return get(Id);
    auto It = Dynamic.find(Name);
    return It == Dynamic.end() ? 0 : It->second;
  }
  bool has(const std::string &Name) const {
    StatId Id = idForName(Name);
    if (Id != StatId::NumIds)
      return has(Id);
    return Dynamic.count(Name) != 0;
  }

  /// Snapshot of every touched counter, name-ordered (table/JSON output).
  std::map<std::string, uint64_t> all() const;

  void clear() {
    Fixed.fill(0);
    Touched.fill(0);
    Dynamic.clear();
  }

  /// Renders "name = value" lines for human consumption.
  std::string render() const;

private:
  void touch(StatId Id) {
    Touched[(size_t)Id >> 6] |= (uint64_t)1 << ((size_t)Id & 63);
  }

  std::array<uint64_t, NumFixed> Fixed{};
  /// Which fixed counters have ever been written (render/has parity with
  /// the old map: an explicit set(x, 0) is visible, an untouched counter
  /// is not).
  std::array<uint64_t, (NumFixed + 63) / 64> Touched{};
  std::map<std::string, uint64_t> Dynamic;
};

} // namespace tfgc

#endif // TFGC_SUPPORT_STATS_H
