//===- tasking/Tasking.cpp ------------------------------------------------===//

#include "tasking/Tasking.h"

#include <cassert>

using namespace tfgc;

TaskingRuntime::TaskingRuntime(const IrProgram &Prog, const CodeImage &Img,
                               TypeContext &Types, Collector &Col,
                               TaskingOptions Opts)
    : Prog(Prog), Img(Img), Types(Types), Col(Col), Opts(Opts) {
  DecodeConfig DC;
  DC.Model = Col.model();
  DC.Fuse = Opts.FuseSuperinstructions;
  DC.FloatSelfTag = Opts.FloatSelfTag;
  DC.TailCalls = Opts.TailCalls;
  Decoded = decodeProgram(Prog, DC);
}

void TaskingRuntime::spawnInt(FuncId Entry, const std::vector<int64_t> &Args) {
  VmOptions VO;
  VO.ZeroFrames = Opts.ZeroFrames;
  VO.Checks = Opts.Policy;
  VO.Coord = this;
  VO.TaskIndex = (uint32_t)Tasks.size();
  VO.Dispatch = Opts.Dispatch;
  VO.FuseSuperinstructions = Opts.FuseSuperinstructions;
  VO.FloatSelfTag = Opts.FloatSelfTag;
  VO.TailCalls = Opts.TailCalls;
  VO.Decoded = &Decoded;
  Task T;
  T.Machine = std::make_unique<Vm>(Prog, Img, Types, Col, VO);
  std::vector<Word> Words;
  for (int64_t A : Args)
    Words.push_back(Col.model() == ValueModel::Tagged ? tagInt(A) : (Word)A);
  T.Machine->start(Entry, Words);
  Tasks.push_back(std::move(T));
  Col.stats().add(StatId::TaskSpawned);
}

void TaskingRuntime::requestGc(size_t Need) {
  if (!GcRequested) {
    GcRequested = true;
    StepsSinceRequest = 0;
    RequestTime = std::chrono::steady_clock::now();
    Col.stats().add(StatId::TaskGcRequests);
  }
  if (Need > NeedWords)
    NeedWords = Need;
}

void TaskingRuntime::collectWorld() {
  RootSet Roots;
  for (Task &T : Tasks)
    if (!T.Done)
      Roots.Stacks.push_back(&T.Machine->mutableStack());
  Col.telemetry().recordWorldStopDelay(
      (uint64_t)std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - RequestTime)
          .count());
  Col.collect(Roots, NeedWords ? NeedWords : 1);
  Col.stats().add(StatId::TaskWorldStops);
  Col.stats().add(StatId::TaskStepsToWorldStopTotal, StepsSinceRequest);
  Col.stats().max(StatId::TaskStepsToWorldStopMax, StepsSinceRequest);
  GcRequested = false;
  NeedWords = 0;
  for (Task &T : Tasks)
    T.BlockedForGc = false;
}

bool TaskingRuntime::runAll() {
  Results.assign(Tasks.size(), TaskResult{});
  uint64_t TotalSteps = 0;
  size_t Live = Tasks.size();

  while (Live > 0) {
    bool AnyProgress = false;
    for (size_t Idx = 0; Idx < Tasks.size(); ++Idx) {
      Task &T = Tasks[Idx];
      if (T.Done || (T.BlockedForGc && GcRequested))
        continue;
      T.BlockedForGc = false;
      Col.stats().add(StatId::TaskContextSwitches);
      // One scheduler slice. The VM's fuel counter enforces the budget
      // and — when a collection is pending — polls the coordinator every
      // SafepointPollSteps, yielding the slice early so the scheduler
      // reaches the remaining unsuspended tasks sooner.
      bool GcAtSliceStart = GcRequested;
      uint64_t Before = T.Machine->steps();
      StepResult R = T.Machine->exec(Opts.TimeSliceSteps);
      uint64_t Delta = T.Machine->steps() - Before;
      TotalSteps += Delta;
      // A request can only appear mid-slice through this task's own
      // allocator (which blocks it immediately), so steps taken this
      // slice count as post-request work only if the request predates
      // the slice.
      if (GcAtSliceStart)
        StepsSinceRequest += Delta;
      if (TotalSteps > Opts.MaxTotalSteps) {
        Results[Idx].Error = "step limit exceeded";
        publishTaskStats();
        return false;
      }
      if (R == StepResult::Ran) {
        AnyProgress = true;
      } else if (R == StepResult::BlockedOnGc) {
        T.BlockedForGc = true;
        // This task just reached its safe point: its share of the
        // world-stop latency is the time since the request (zero for
        // the requesting task itself).
        uint64_t DelayNs =
            (uint64_t)std::chrono::duration_cast<std::chrono::nanoseconds>(
                std::chrono::steady_clock::now() - RequestTime)
                .count();
        T.StopDelayHist.record(DelayNs);
        if (Monitor *M = Col.monitor())
          M->recordTaskStopDelay((uint32_t)Idx, DelayNs);
        AnyProgress = true;
      } else {
        // Done or Failed.
        T.Done = true;
        --Live;
        T.Machine->flushCounters();
        TaskResult &TR = Results[Idx];
        TR.Output = T.Machine->output();
        if (R == StepResult::Done) {
          TR.Ok = true;
          TR.Value = T.Machine->renderResult();
        } else {
          TR.Error = T.Machine->error();
        }
      }
    }

    if (GcRequested) {
      // The world is stopped once every live task is suspended at a safe
      // point.
      bool AllSuspended = true;
      for (Task &T : Tasks)
        if (!T.Done && !T.BlockedForGc)
          AllSuspended = false;
      if (AllSuspended && Live > 0)
        collectWorld();
      else if (!AnyProgress) {
        // Every runnable task is blocked and some task never reached a
        // safe point: with cooperative scheduling this cannot happen, but
        // guard against livelock.
        collectWorld();
      }
    } else if (!AnyProgress && Live > 0) {
      assert(false && "scheduler livelock");
      break;
    }
  }

  publishTaskStats();
  bool AllOk = true;
  for (const TaskResult &R : Results)
    if (!R.Ok)
      AllOk = false;
  return AllOk;
}

void TaskingRuntime::publishTaskStats() {
  Stats &St = Col.stats();
  // Runs with the world quiescent (run end or scheduler abort); the
  // per-task names are dynamic, so mark the safepoint for the shard guard.
  Stats::SafepointScope Scope(St);
  for (size_t I = 0; I < Tasks.size(); ++I) {
    std::string Base = "task." + std::to_string(I);
    St.set(Base + ".mutator_steps", Tasks[I].Machine->steps());
    const LogHistogram &H = Tasks[I].StopDelayHist;
    if (!H.count())
      continue;
    St.set(Base + ".world_stop_delays", H.count());
    St.set(Base + ".world_stop_delay_ns_p50", H.percentile(50));
    St.set(Base + ".world_stop_delay_ns_p90", H.percentile(90));
    St.set(Base + ".world_stop_delay_ns_p99", H.percentile(99));
  }
}
