//===- runtime/Value.h - Run-time value representation ----------*- C++ -*-===//
///
/// \file
/// Run-time words under the two value models the experiments compare.
///
/// Tag-free model (the paper's): a word is a raw 64-bit integer, a raw
/// aligned pointer to a heap payload, an unboxed double, or a small
/// immediate (nullary datatype constructor, bool, unit). Nothing about a
/// word says which — only the compiler-generated GC metadata knows.
///
/// Tagged model (the baseline): the low bit distinguishes immediates
/// (bit 1, value in the upper 63 bits) from pointers (bit 0, 8-byte
/// aligned). Every heap object carries a one-word header at payload[-1],
/// and doubles are boxed. This is the classic SML/NJ-style scheme the
/// paper wants to eliminate.
///
/// Heap object payload layouts (identical across models; tagged adds the
/// header in front and tags each stored word):
///   tuple    [f0 .. fn-1]
///   data     [discriminant, f0 .. fk-1]   (nullary ctors are immediates)
///   closure  [code address, e0 .. em-1]
///   ref      [v]
///   floatbox [bits]                        (tagged model only)
///
//===----------------------------------------------------------------------===//

#ifndef TFGC_RUNTIME_VALUE_H
#define TFGC_RUNTIME_VALUE_H

#include <cstdint>
#include <cstring>

namespace tfgc {

using Word = uint64_t;

enum class ValueModel : uint8_t { TagFree, Tagged };

/// Nullary-constructor immediates are below this bound; heap pointers are
/// real addresses and always far above it.
inline constexpr Word ImmediateCtorLimit = 2048;

// -- Tagged-model helpers ---------------------------------------------------

inline Word tagInt(int64_t V) { return ((uint64_t)V << 1) | 1; }
inline int64_t untagInt(Word W) { return (int64_t)W >> 1; }
inline bool isTaggedImmediate(Word W) { return (W & 1) != 0; }
/// In the tagged model a non-null even word is a pointer.
inline bool isTaggedPointer(Word W) { return W != 0 && (W & 1) == 0; }

// -- Tagged-model object headers ---------------------------------------------

enum class ObjKind : uint8_t {
  Scan = 0, ///< Scan every payload word by its tag bit.
  Raw = 1,  ///< No pointers (float box).
};

inline Word makeHeader(uint32_t PayloadWords, ObjKind Kind) {
  return ((Word)PayloadWords << 8) | (Word)Kind;
}
inline uint32_t headerSize(Word Header) { return (uint32_t)(Header >> 8); }
inline ObjKind headerKind(Word Header) {
  return (ObjKind)(Header & 0xff);
}

// -- Float bit casts ----------------------------------------------------------

inline Word floatToWord(double D) {
  Word W;
  std::memcpy(&W, &D, sizeof(W));
  return W;
}
inline double wordToFloat(Word W) {
  double D;
  std::memcpy(&D, &W, sizeof(D));
  return D;
}

} // namespace tfgc

#endif // TFGC_RUNTIME_VALUE_H
