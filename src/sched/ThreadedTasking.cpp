//===- sched/ThreadedTasking.cpp ------------------------------------------===//

#include "sched/ThreadedTasking.h"

#include <cassert>
#include <thread>

using namespace tfgc;

ThreadedRuntime::ThreadedRuntime(const IrProgram &Prog, const CodeImage &Img,
                                 TypeContext &Types, Collector &Col,
                                 TaskingOptions Opts)
    : Prog(Prog), Img(Img), Types(Types), Col(Col), Opts(Opts) {
  Col.setParallelMutators(true);
  DecodeConfig DC;
  DC.Model = Col.model();
  DC.Fuse = Opts.FuseSuperinstructions;
  DC.FloatSelfTag = Opts.FloatSelfTag;
  DC.TailCalls = Opts.TailCalls;
  Decoded = decodeProgram(Prog, DC);
}

void ThreadedRuntime::spawnInt(FuncId Entry,
                               const std::vector<int64_t> &Args) {
  assert(!Coord && "spawn after runAll");
  Task T;
  T.TaskTlab = std::make_unique<Tlab>();
  T.Label = "mutator-" + std::to_string(Tasks.size());
  VmOptions VO;
  VO.ZeroFrames = Opts.ZeroFrames;
  VO.MaxSteps = Opts.MaxTotalSteps;
  VO.Checks = Opts.Policy;
  VO.Coord = this;
  VO.TaskIndex = (uint32_t)Tasks.size();
  VO.Dispatch = Opts.Dispatch;
  VO.FuseSuperinstructions = Opts.FuseSuperinstructions;
  VO.FloatSelfTag = Opts.FloatSelfTag;
  VO.TailCalls = Opts.TailCalls;
  VO.Decoded = &Decoded;
  VO.ThreadTlab = T.TaskTlab.get();
  if (Opts.Flight) {
    // Ring i belongs to task i: the owning thread is the only producer
    // (VM, TLAB and park events all happen on it), which is what keeps
    // the rings single-producer with zero synchronization.
    T.Flight = &Opts.Flight->taskRing((unsigned)Tasks.size());
    T.TaskTlab->Flight = T.Flight;
    VO.Flight = T.Flight;
  }
  // Constructing the VM here claims shard TaskIndex+1 on the launching
  // thread — the shard vector is frozen before any mutator thread starts.
  T.Machine = std::make_unique<Vm>(Prog, Img, Types, Col, VO);
  std::vector<Word> Words;
  for (int64_t A : Args)
    Words.push_back(Col.model() == ValueModel::Tagged ? tagInt(A) : (Word)A);
  T.Machine->start(Entry, Words);
  Tasks.push_back(std::move(T));
  Col.stats().add(StatId::TaskSpawned);
}

void ThreadedRuntime::requestGc(size_t NeedWords) {
  assert(Coord && "allocation before runAll");
  // Exactly one arm per handshake cycle owns the request counter, so
  // task.gc_requests == task.world_stops at the end of a clean run (the
  // no-lost-handshakes invariant the stress test checks). The shard-0
  // write is ordered against the collector's by the coordinator mutex:
  // this thread arms, then parks; the pause only starts after the park.
  if (Coord->requestStop(NeedWords))
    Col.stats().add(StatId::TaskGcRequests);
}

void ThreadedRuntime::collectWorld(size_t NeedWords, uint64_t StopDelayNs) {
  RootSet Roots;
  for (Task &T : Tasks)
    if (!T.Done)
      Roots.Stacks.push_back(&T.Machine->mutableStack());
  // Retire every TLAB before the spaces move: the collection reuses the
  // nursery under the parked windows, and the owners refill from the
  // fresh cursor when they resume. Finished tasks' TLABs are inert.
  for (Task &T : Tasks)
    T.TaskTlab->reset();
  Col.telemetry().recordWorldStopDelay(StopDelayNs);
  // With a live scraper attached, refresh the per-task view and the heap
  // gauges before the collector's epoch fold (inside this same pause)
  // snapshots them; every mutator is parked or finished, so their
  // counters are mutex-ordered ahead of these reads.
  if (Col.epochAggregator()) {
    publishTaskStats();
    Stats &St = Col.stats();
    St.set(StatId::HeapUsedBytes, Col.heapUsedBytes());
    St.set(StatId::HeapCapacityBytes, Col.heapCapacityBytes());
    St.set(StatId::HeapBytesAllocatedTotal, Col.bytesAllocatedTotal());
  }
  Col.collect(Roots, NeedWords ? NeedWords : 1);
  Col.stats().add(StatId::TaskWorldStops);
}

void ThreadedRuntime::threadMain(size_t Idx) {
  Task &T = Tasks[Idx];
  Stats::setThreadLabel(T.Label.c_str());
  if (T.Flight)
    T.Flight->record(FlightEventType::ThreadStart);
  auto Collect = [this, Idx](size_t Need, uint64_t DelayNs) {
    // The pause runs on this thread: put its trace events on this task's
    // Chrome-trace track.
    Col.telemetry().setTraceTid(1 + Idx);
    collectWorld(Need, DelayNs);
  };
  for (;;) {
    StepResult R = T.Machine->exec(Opts.TimeSliceSteps);
    if (R == StepResult::Ran)
      continue;
    if (R == StepResult::BlockedOnGc) {
      Coord->park(
          [&](const SafepointCoordinator::ParkInfo &PI) {
            T.StopDelayHist.record(PI.DelayNs);
            if (Monitor *M = Col.monitor())
              M->recordTaskStopDelay((uint32_t)Idx, PI.DelayNs);
            if (PI.LastParker)
              LastParkerTask = Idx;
            if (T.Flight)
              T.Flight->record(FlightEventType::ThreadPark,
                               (uint32_t)PI.Epoch, PI.DelayNs,
                               PI.LastParker ? 1 : 0);
          },
          Collect,
          [&](uint64_t E) {
            if (T.Flight)
              T.Flight->record(FlightEventType::ThreadResume, (uint32_t)E);
          });
      continue;
    }
    // Done or Failed. Render the result while this thread still counts
    // as live: no pause can start until it parks or finishes, so the
    // heap cannot move under renderResult().
    T.Machine->flushHotCounters();
    TaskResult &TR = Results[Idx];
    TR.Output = T.Machine->output();
    if (R == StepResult::Done) {
      TR.Ok = true;
      TR.Value = T.Machine->renderResult();
    } else {
      TR.Error = T.Machine->error();
    }
    T.Done = true;
    if (T.Flight)
      T.Flight->record(FlightEventType::ThreadExit);
    Coord->threadFinished(Collect, [&](uint64_t E, uint64_t D) {
      // This exit completed a rendezvous others are parked in: the
      // pending collection runs here, on the exiting thread.
      LastParkerTask = Idx;
      if (T.Flight)
        T.Flight->record(FlightEventType::PendingHandoff, (uint32_t)E, D);
    });
    return;
  }
}

bool ThreadedRuntime::runAll() {
  Results.assign(Tasks.size(), TaskResult{});
  if (Tasks.empty())
    return true;
  Coord = std::make_unique<SafepointCoordinator>((unsigned)Tasks.size());
  if (Opts.Flight)
    Coord->setFlightRing(&Opts.Flight->gcRing());
  std::vector<std::thread> Threads;
  Threads.reserve(Tasks.size());
  for (size_t I = 0; I < Tasks.size(); ++I)
    Threads.emplace_back([this, I] { threadMain(I); });
  for (std::thread &Th : Threads)
    Th.join();

  // The joins are the final safepoint: every shard is quiescent, so the
  // gauges, the telemetry-derived stats and the per-task view can be
  // published from this thread like the sequential VM does at run end.
  Stats &St = Col.stats();
  St.set(StatId::HeapUsedBytes, Col.heapUsedBytes());
  St.set(StatId::HeapCapacityBytes, Col.heapCapacityBytes());
  St.set(StatId::HeapBytesAllocatedTotal, Col.bytesAllocatedTotal());
  Col.publishTelemetryStats();
  publishTaskStats();

  bool AllOk = true;
  for (const TaskResult &R : Results)
    if (!R.Ok)
      AllOk = false;
  return AllOk;
}

void ThreadedRuntime::publishTaskStats() {
  Stats &St = Col.stats();
  Stats::SafepointScope Scope(St);
  for (size_t I = 0; I < Tasks.size(); ++I) {
    std::string Base = "task." + std::to_string(I);
    St.set(Base + ".mutator_steps", Tasks[I].Machine->steps());
    St.set(Base + ".tlab_refills", Tasks[I].TaskTlab->Refills);
    St.set(Base + ".tlab_alloc_words", Tasks[I].TaskTlab->AllocatedWords);
    const LogHistogram &H = Tasks[I].StopDelayHist;
    if (!H.count())
      continue;
    St.set(Base + ".world_stop_delays", H.count());
    St.set(Base + ".world_stop_delay_ns_p50", H.percentile(50));
    St.set(Base + ".world_stop_delay_ns_p90", H.percentile(90));
    St.set(Base + ".world_stop_delay_ns_p99", H.percentile(99));
    // Same histogram under its attribution name: "time to safepoint" is
    // what straggler hunting asks for (/metrics, tools/tfgc_top.py).
    St.set(Base + ".time_to_safepoint_ns_p50", H.percentile(50));
    St.set(Base + ".time_to_safepoint_ns_p99", H.percentile(99));
  }
  St.set("sched.handshake_epochs", Coord ? Coord->epoch() : 0);
  if (LastParkerTask != UINT64_MAX)
    St.set("sched.last_parker_task", LastParkerTask);
}
