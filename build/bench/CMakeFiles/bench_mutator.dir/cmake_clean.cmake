file(REMOVE_RECURSE
  "CMakeFiles/bench_mutator.dir/bench_mutator.cpp.o"
  "CMakeFiles/bench_mutator.dir/bench_mutator.cpp.o.d"
  "bench_mutator"
  "bench_mutator.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_mutator.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
