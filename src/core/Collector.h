//===- core/Collector.h - Collector interface -------------------*- C++ -*-===//
///
/// \file
/// Base class for all collectors. A collector owns the heap (semispace or
/// mark-sweep), provides mutator allocation, and implements root tracing
/// according to its strategy:
///
///   TaggedCollector      program-independent scan by tag bits + headers
///   GoldbergCollector    the paper's tag-free method (compiled or
///                        interpreted frame routines; oldest-to-newest
///                        traversal with type-GC closures for polymorphism)
///   AppelCollector       one descriptor per procedure, dynamic-chain type
///                        reconstruction (paper section 1.1.1)
///
//===----------------------------------------------------------------------===//

#ifndef TFGC_CORE_COLLECTOR_H
#define TFGC_CORE_COLLECTOR_H

#include "gcmeta/CodeImage.h"
#include "runtime/Heap.h"
#include "runtime/MarkSweepHeap.h"
#include "runtime/Roots.h"
#include "support/Stats.h"
#include "support/Telemetry.h"

#include <memory>

namespace tfgc {

enum class GcAlgorithm : uint8_t { Copying, MarkSweep };

enum class GcStrategy : uint8_t {
  Tagged,
  CompiledTagFree,
  InterpretedTagFree,
  AppelTagFree,
};

const char *gcStrategyName(GcStrategy S);

class Space;

class Collector {
public:
  Collector(ValueModel Model, GcAlgorithm Algo, size_t HeapBytes, Stats &St);
  virtual ~Collector() = default;

  ValueModel model() const { return Model; }
  GcAlgorithm algorithm() const { return Algo; }
  Stats &stats() { return St; }

  /// Per-collection phase spans, pause/phase histograms, and heap census
  /// (see support/Telemetry.h). Recorded unconditionally — the ring is
  /// preallocated and a span costs one clock read per phase switch.
  Telemetry &telemetry() { return Tel; }
  const Telemetry &telemetry() const { return Tel; }

  /// Flushes derived telemetry into the stats registry: pause percentiles
  /// (gc.pause_ns_p50/p90/p99), cumulative per-phase times
  /// (gc.phase_<name>_ns), live census totals (gc.census_<kind>_*), and
  /// tasking world-stop delay percentiles. Called by Vm::flushCounters so
  /// every run's Stats snapshot carries the histogram summaries.
  void publishTelemetryStats();

  /// Mutator allocation of \p PayloadWords payload words; under the tagged
  /// model a header word is added and initialized. Returns nullptr when a
  /// collection is needed.
  Word *tryAllocatePayload(size_t PayloadWords, ObjKind Kind);

  /// Collects, growing the heap as needed until \p NeedPayloadWords can be
  /// allocated.
  void collect(RootSet &Roots, size_t NeedPayloadWords);

  /// After every collection, re-traverse the reachable graph read-only
  /// and count references that escaped the live heap (collector bug
  /// detector; results in stats key "gc.verify_violations").
  void setVerifyAfterGc(bool Enabled) { VerifyAfterGc = Enabled; }

  size_t heapUsedBytes() const;
  size_t heapCapacityBytes() const;
  uint64_t bytesAllocatedTotal() const;

protected:
  /// Strategy-specific root tracing into \p Sp.
  virtual void traceRoots(RootSet &Roots, Space &Sp) = 0;

  ValueModel Model;
  GcAlgorithm Algo;
  Stats &St;
  Telemetry Tel;
  bool VerifyAfterGc = false;
  std::unique_ptr<Heap> Copying;
  std::unique_ptr<MarkSweepHeap> Ms;
};

} // namespace tfgc

#endif // TFGC_CORE_COLLECTOR_H
