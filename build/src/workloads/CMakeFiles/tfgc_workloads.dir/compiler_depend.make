# Empty compiler generated dependencies file for tfgc_workloads.
# This may be replaced when dependencies are built.
