file(REMOVE_RECURSE
  "libtfgc_ir.a"
)
