//===- bench/BenchUtil.h - Shared bench harness helpers ---------*- C++ -*-===//
///
/// \file
/// Helpers shared by the experiment binaries (E1..E9). Each binary prints
/// a paper-style table derived from deterministic runs, then (where the
/// experiment is about wall time) runs google-benchmark timings.
///
//===----------------------------------------------------------------------===//

#ifndef TFGC_BENCH_BENCHUTIL_H
#define TFGC_BENCH_BENCHUTIL_H

#include "driver/Compiler.h"
#include "workloads/Programs.h"

#include <benchmark/benchmark.h>

#include <cstdio>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

namespace tfgc::bench {

// -- JSON trajectory output ----------------------------------------------
//
// Every bench binary accepts `--json <path>` (or `--json=<path>`): the
// paper-table counter runs and the google-benchmark timings are then also
// written to <path> as one JSON document, so the repo can accumulate
// BENCH_<name>.json files as a perf trajectory across PRs.

class JsonSink {
public:
  /// Scans argv for --json and strips it (google-benchmark rejects flags
  /// it does not know).
  JsonSink(std::string BenchName, int &Argc, char **Argv)
      : BenchName(std::move(BenchName)) {
    int Out = 1;
    for (int I = 1; I < Argc; ++I) {
      std::string Arg = Argv[I];
      if (Arg == "--json" && I + 1 < Argc) {
        Path = Argv[++I];
      } else if (Arg.rfind("--json=", 0) == 0) {
        Path = Arg.substr(7);
      } else {
        Argv[Out++] = Argv[I];
      }
    }
    Argc = Out;
    active() = this;
  }
  ~JsonSink() {
    if (active() == this)
      active() = nullptr;
  }

  bool enabled() const { return !Path.empty(); }

  /// Labels subsequent record() calls with the workload being tabled.
  void setWorkload(std::string W) { Workload = std::move(W); }

  /// Captures one deterministic run's counters. \p Threads labels rows
  /// from the OS-thread runtime (E15); 0 omits the field (sequential VM).
  void record(const char *Strategy, GcAlgorithm A, size_t HeapBytes,
              const Stats &St, size_t NurseryBytes = 0,
              unsigned Threads = 0) {
    if (!enabled())
      return;
    std::ostringstream OS;
    OS << "    {\"workload\": \"" << Workload << "\", \"strategy\": \""
       << Strategy << "\", \"algorithm\": \"" << gcAlgorithmName(A)
       << "\", \"heap_bytes\": " << HeapBytes;
    if (NurseryBytes)
      OS << ", \"nursery_bytes\": " << NurseryBytes;
    if (Threads)
      OS << ", \"threads\": " << Threads;
    OS << ", \"counters\": {";
    bool First = true;
    for (const auto &[Name, Value] : St.all()) {
      OS << (First ? "" : ", ") << '"' << Name << "\": " << Value;
      First = false;
    }
    OS << "}}";
    Rows.push_back(OS.str());
  }

  /// Runs the registered google-benchmark timings (JSON-captured when
  /// enabled) and writes the document. Call after benchmark::Initialize.
  void runBenchmarksAndWrite() {
    if (!enabled()) {
      benchmark::RunSpecifiedBenchmarks();
      return;
    }
    // The JSON reporter stands in as the display reporter (a separate
    // file reporter would demand --benchmark_out); timings go to the
    // document instead of the console in JSON mode.
    std::ostringstream Timings;
    {
      benchmark::JSONReporter Json;
      Json.SetOutputStream(&Timings);
      Json.SetErrorStream(&std::cerr);
      benchmark::RunSpecifiedBenchmarks(&Json);
    }
    std::ofstream Out(Path);
    if (!Out) {
      std::fprintf(stderr, "cannot write %s\n", Path.c_str());
      std::abort();
    }
    std::string TimingsDoc = Timings.str();
    if (TimingsDoc.empty())
      TimingsDoc = "null"; // Bench with no registered timings.
    Out << "{\n  \"bench\": \"" << BenchName << "\",\n  \"schema\": 1,\n"
        << "  \"table_runs\": [\n";
    for (size_t I = 0; I < Rows.size(); ++I)
      Out << Rows[I] << (I + 1 < Rows.size() ? ",\n" : "\n");
    Out << "  ],\n  \"benchmark\": " << TimingsDoc << "\n}\n";
    std::printf("wrote %s\n", Path.c_str());
  }

  static JsonSink *&active() {
    static JsonSink *S = nullptr;
    return S;
  }

private:
  std::string BenchName;
  std::string Path;
  std::string Workload;
  std::vector<std::string> Rows;
};

/// Labels the table rows that follow in the JSON capture (no-op when no
/// sink is active).
inline void jsonWorkload(const std::string &W) {
  if (JsonSink *S = JsonSink::active())
    S->setWorkload(W);
}

/// Runs a program once and returns its stats (aborts on failure — benches
/// must not silently measure broken runs). Counter results feed the
/// active JsonSink, if any.
inline Stats runOnce(const std::string &Source, GcStrategy S,
                     GcAlgorithm A = GcAlgorithm::Copying,
                     size_t HeapBytes = 1 << 16, bool Stress = false,
                     CompileOptions Options = {}, size_t NurseryBytes = 0) {
  ExecResult R =
      execProgram(Source, S, A, HeapBytes, Stress, Options, NurseryBytes);
  if (!R.CompileOk || !R.Run.Ok) {
    std::fprintf(stderr, "bench workload failed under %s: %s%s\n",
                 gcStrategyName(S), R.CompileError.c_str(),
                 R.Run.Error.c_str());
    std::abort();
  }
  if (JsonSink *Sink = JsonSink::active())
    Sink->record(gcStrategyName(S), A, HeapBytes, R.St, NurseryBytes);
  return std::move(R.St);
}

/// Compiles once; reused across benchmark iterations.
inline std::unique_ptr<CompiledProgram>
compileOrDie(const std::string &Source, CompileOptions Options = {}) {
  Compiler C(Options);
  std::string Err;
  auto P = C.compile(Source, &Err);
  if (!P) {
    std::fprintf(stderr, "bench workload failed to compile: %s\n",
                 Err.c_str());
    std::abort();
  }
  return P;
}

/// One timed end-to-end run on a precompiled program. The trailing
/// mutator fast-path knobs (dispatch loop / superinstruction fusion /
/// float self-tagging) default to the production configuration; E13
/// passes the de-optimized baseline to measure the fast path itself.
inline void timedRun(benchmark::State &State, CompiledProgram &P,
                     GcStrategy S, GcAlgorithm A, size_t HeapBytes,
                     bool ZeroFramesOverride = false, bool Stress = false,
                     size_t NurseryBytes = 0,
                     DispatchMode Dispatch = DispatchMode::Auto,
                     bool Fuse = true, bool FloatSelfTag = true,
                     bool TailCalls = true) {
  for (auto _ : State) {
    Stats St;
    std::string Err;
    auto Col = P.makeCollector(S, A, HeapBytes, St, &Err, NurseryBytes);
    if (!Col) {
      State.SkipWithError(Err.c_str());
      return;
    }
    VmOptions VO = defaultVmOptions(S, Stress);
    VO.ZeroFrames = VO.ZeroFrames || ZeroFramesOverride;
    VO.Dispatch = Dispatch;
    VO.FuseSuperinstructions = Fuse;
    VO.FloatSelfTag = FloatSelfTag;
    VO.TailCalls = TailCalls;
    Vm M(P.Prog, P.Image, *P.Types, *Col, VO);
    RunResult R = M.run();
    if (!R.Ok) {
      State.SkipWithError(R.Error.c_str());
      return;
    }
    benchmark::DoNotOptimize(R.Value.data());
    State.counters["collections"] = (double)St.get(StatId::GcCollections);
  }
}

// -- Table printing -----------------------------------------------------

inline void tableHeader(const char *Title, const char *Legend,
                        const std::vector<std::string> &Cols) {
  std::printf("\n=== %s ===\n%s\n", Title, Legend);
  for (const std::string &C : Cols)
    std::printf("%-22s", C.c_str());
  std::printf("\n");
  for (size_t I = 0; I < Cols.size(); ++I)
    std::printf("%-22s", "--------------------");
  std::printf("\n");
}

inline void tableCell(const std::string &V) {
  std::printf("%-22s", V.c_str());
}
inline void tableCell(uint64_t V) { std::printf("%-22llu", (unsigned long long)V); }
inline void tableCell(double V) { std::printf("%-22.3f", V); }
inline void tableEnd() { std::printf("\n"); }

inline std::string human(uint64_t Bytes) {
  char Buf[32];
  if (Bytes >= 1024 * 1024)
    std::snprintf(Buf, sizeof(Buf), "%.1fMiB", (double)Bytes / (1 << 20));
  else if (Bytes >= 1024)
    std::snprintf(Buf, sizeof(Buf), "%.1fKiB", (double)Bytes / 1024);
  else
    std::snprintf(Buf, sizeof(Buf), "%lluB", (unsigned long long)Bytes);
  return Buf;
}

} // namespace tfgc::bench

#endif // TFGC_BENCH_BENCHUTIL_H
