file(REMOVE_RECURSE
  "CMakeFiles/tfgc_frontend.dir/Lexer.cpp.o"
  "CMakeFiles/tfgc_frontend.dir/Lexer.cpp.o.d"
  "CMakeFiles/tfgc_frontend.dir/Parser.cpp.o"
  "CMakeFiles/tfgc_frontend.dir/Parser.cpp.o.d"
  "libtfgc_frontend.a"
  "libtfgc_frontend.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tfgc_frontend.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
