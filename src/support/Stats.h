//===- support/Stats.h - Sharded statistic counters -------------*- C++ -*-===//
///
/// \file
/// Counters the collectors, the VM, and the tasking runtime record for the
/// experiments (pause times, bytes copied, chain-walk counts, suspension
/// checks).
///
/// The hot trace path increments counters for *every object and field
/// visited*, so the well-known counters are an enum (StatId) indexed into a
/// flat uint64_t array: add/set/max/get are O(1) array operations with no
/// string hashing and no map nodes. The string-keyed API remains as a thin
/// compatibility shim — fixed names resolve (by binary search over the
/// static name table) to the same slots the StatId overloads use, and
/// genuinely dynamic names fall back to an ordered side map. render()
/// output is byte-identical to the historical std::map implementation:
/// every touched counter, in name order.
///
/// Sharding. Stats is a *facade* over one or more StatsShard domains. Each
/// task (thread-to-be) owns a cache-line-padded shard written with plain
/// unsynchronized stores on the hot path; shard 0 is the collector /
/// safepoint domain that every facade-level StatId write lands in. Read
/// paths (get/has/all/render) fold the shards into one coherent view:
/// Sum for accumulating counters, Max for high-water marks (statFold()).
/// Gauges (heap.used_bytes, pause percentiles, mon.*) are written only
/// through the facade at safepoints, so the fold is the identity for them.
/// Sequential single-task runs therefore fold to values bit-identical to
/// the pre-sharding single-domain implementation.
///
/// Dynamic string-name registration mutates the shared side map and is NOT
/// shard-local, so once more than one shard exists it is only legal inside
/// a Stats::SafepointScope (collection boundaries, heartbeats, run end).
/// A dynamic write outside a safepoint with shards live hard-aborts with a
/// diagnostic rather than silently racing once real threads arrive.
///
//===----------------------------------------------------------------------===//

#ifndef TFGC_SUPPORT_STATS_H
#define TFGC_SUPPORT_STATS_H

#include <array>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

namespace tfgc {

/// Every statically known counter. Enumerators are kept in alphabetical
/// order of their string names so render() can merge fixed and dynamic
/// counters with a single two-finger walk (see Stats::render).
enum class StatId : uint16_t {
  GcBarrierOps,              // gc.barrier_ops
  GcBytesReclaimed,          // gc.bytes_reclaimed
  GcChainSteps,              // gc.chain_steps
  GcCollections,             // gc.collections
  GcCompiledActions,         // gc.compiled_actions
  GcDescSteps,               // gc.desc_steps
  GcFramesTraced,            // gc.frames_traced
  GcGlogerDummies,           // gc.gloger_dummies
  GcHeapGrowths,             // gc.heap_growths
  GcMajorCollections,        // gc.major_collections
  GcMinorCollections,        // gc.minor_collections
  GcObjectsVisited,          // gc.objects_visited
  GcParallelTraces,          // gc.parallel_traces
  GcParallelWorkers,         // gc.parallel_workers
  GcPauseNsMax,              // gc.pause_ns_max
  GcPauseNsP50,              // gc.pause_ns_p50
  GcPauseNsP90,              // gc.pause_ns_p90
  GcPauseNsP99,              // gc.pause_ns_p99
  GcPauseNsTotal,            // gc.pause_ns_total
  GcPromotedWords,           // gc.promoted_words
  GcPtrReversalSteps,        // gc.ptr_reversal_steps
  GcRemsetEntries,           // gc.remset_entries
  GcSlotsTraced,             // gc.slots_traced
  GcStackSteals,             // gc.stack_steals
  GcTgCacheHits,             // gc.tg_cache_hits
  GcTgCacheMisses,           // gc.tg_cache_misses
  GcTgMemoHits,              // gc.tg_memo_hits
  GcTgNodes,                 // gc.tg_nodes
  GcTgSteps,                 // gc.tg_steps
  GcVerifyPasses,            // gc.verify_passes
  GcVerifyViolations,        // gc.verify_violations
  GcWordsVisited,            // gc.words_visited
  HeapBytesAllocatedTotal,   // heap.bytes_allocated_total
  HeapCapacityBytes,         // heap.capacity_bytes
  HeapObjectsAllocated,      // heap.objects_allocated
  HeapUsedBytes,             // heap.used_bytes
  TaskContextSwitches,       // task.context_switches
  TaskGcRequests,            // task.gc_requests
  TaskSpawned,               // task.spawned
  TaskStepsToWorldStopMax,   // task.steps_to_world_stop_max
  TaskStepsToWorldStopTotal, // task.steps_to_world_stop_total
  TaskSuspendChecks,         // task.suspend_checks
  TaskWorldStops,            // task.world_stops
  VmCalls,                   // vm.calls
  VmFloatBoxes,              // vm.float_boxes
  VmFrameWordsZeroed,        // vm.frame_words_zeroed
  VmMaxFrames,               // vm.max_frames
  VmMaxSlotWords,            // vm.max_slot_words
  VmSteps,                   // vm.steps
  VmSuperinstructions,       // vm.superinstructions_executed
  VmTagOps,                  // vm.tag_ops
  VmTailCalls,               // vm.tail_calls

  NumIds
};

constexpr size_t NumStatIds = (size_t)StatId::NumIds;

/// How shard values combine into the folded global view.
enum class StatFold : uint8_t { Sum, Max };

/// Fold rule per counter: accumulators sum across shards; high-water marks
/// take the max (two tasks with 40 and 60 live frames have a 60-frame
/// maximum, not 100).
constexpr StatFold statFold(StatId Id) {
  switch (Id) {
  case StatId::GcParallelWorkers:
  case StatId::GcPauseNsMax:
  case StatId::TaskStepsToWorldStopMax:
  case StatId::VmMaxFrames:
  case StatId::VmMaxSlotWords:
    return StatFold::Max;
  default:
    return StatFold::Sum;
  }
}

/// One counter domain owned by a single writer (a task's VM, or — shard 0 —
/// the collector/safepoint domain). Cache-line aligned so two tasks'
/// hot-path increments never false-share; all writes are plain
/// unsynchronized stores, made visible to readers only at safepoints.
class alignas(64) StatsShard {
public:
  void add(StatId Id, uint64_t Delta = 1) {
    Fixed[(size_t)Id] += Delta;
    touch(Id);
  }
  void set(StatId Id, uint64_t Value) {
    Fixed[(size_t)Id] = Value;
    touch(Id);
  }
  void max(StatId Id, uint64_t Value) {
    uint64_t &Slot = Fixed[(size_t)Id];
    if (Value > Slot)
      Slot = Value;
    touch(Id);
  }
  uint64_t get(StatId Id) const { return Fixed[(size_t)Id]; }
  bool has(StatId Id) const {
    return (Touched[(size_t)Id >> 6] >> ((size_t)Id & 63)) & 1;
  }
  void clear() {
    Fixed.fill(0);
    Touched.fill(0);
  }

private:
  friend class Stats;
  void touch(StatId Id) {
    Touched[(size_t)Id >> 6] |= (uint64_t)1 << ((size_t)Id & 63);
  }

  std::array<uint64_t, NumStatIds> Fixed{};
  /// Which counters this shard has ever written (render/has parity with
  /// the old map: an explicit set(x, 0) is visible, an untouched counter
  /// is not).
  std::array<uint64_t, (NumStatIds + 63) / 64> Touched{};
};

class Stats {
public:
  static constexpr size_t NumFixed = NumStatIds;

  Stats() : Shards(), Base(nullptr) {
    Shards.emplace_back(std::make_unique<StatsShard>());
    Base = Shards[0].get();
  }
  // Shards are pointer-stable (unique_ptr elements), so moving the facade
  // keeps Base and every cached StatsShard* valid. Copying is deleted:
  // a shard has exactly one writer.
  Stats(Stats &&) = default;
  Stats &operator=(Stats &&) = default;
  Stats(const Stats &) = delete;
  Stats &operator=(const Stats &) = delete;

  /// The stable string name of \p Id (e.g. "gc.objects_visited").
  static std::string_view name(StatId Id);

  /// Resolves \p Name to its StatId, or StatId::NumIds for dynamic names.
  static StatId idForName(std::string_view Name);

  // -- Shards ---------------------------------------------------------------
  /// Shard 0: the collector/safepoint domain every facade write lands in.
  StatsShard &baseShard() { return *Base; }
  /// The shard owned by task \p TaskIndex (created on first use; shard 0 is
  /// reserved for the collector, so task i maps to shard i+1). Creation
  /// mutates the shard vector, so with real threads it must happen before
  /// the threads start (ThreadedRuntime spawns every VM — and thereby
  /// claims every shard — on the launching thread) or under a safepoint.
  StatsShard &shardForTask(uint32_t TaskIndex);
  size_t numShards() const { return Shards.size(); }
  const StatsShard &shard(size_t I) const { return *Shards[I]; }

  /// Folds \p Src into \p Dst per the per-counter fold rules (Sum / Max),
  /// honoring Touched. Used to merge a GC worker's thread-local counter
  /// domain into the collector shard after the workers join.
  static void mergeShard(StatsShard &Dst, const StatsShard &Src) {
    for (size_t I = 0; I < NumStatIds; ++I) {
      StatId Id = (StatId)I;
      if (!Src.has(Id))
        continue;
      if (statFold(Id) == StatFold::Max)
        Dst.max(Id, Src.get(Id));
      else
        Dst.add(Id, Src.get(Id));
    }
  }

  /// Labels the calling thread for diagnostics ("mutator-3",
  /// "gc-worker-1"); the dynamic-name guard failure reports the label and
  /// thread id alongside the offending counter. Defaults to "main".
  static void setThreadLabel(const char *Label);
  static const char *threadLabel();

  // -- O(1) fast path (shard 0) ---------------------------------------------
  void add(StatId Id, uint64_t Delta = 1) { Base->add(Id, Delta); }
  void set(StatId Id, uint64_t Value) { Base->set(Id, Value); }
  void max(StatId Id, uint64_t Value) { Base->max(Id, Value); }

  // -- Folded reads ---------------------------------------------------------
  uint64_t get(StatId Id) const {
    if (Shards.size() == 1)
      return Base->get(Id);
    return foldOne(Id);
  }
  bool has(StatId Id) const {
    for (const auto &S : Shards)
      if (S->has(Id))
        return true;
    return false;
  }

  // -- Safepoint scope for dynamic-name registration ------------------------
  /// Marks a region where the world is stopped (or cooperatively quiescent)
  /// and mutating the shared dynamic-name map is safe. Nestable.
  class SafepointScope {
  public:
    explicit SafepointScope(Stats &S) : S(S) { ++S.SafepointDepth; }
    ~SafepointScope() { --S.SafepointDepth; }
    SafepointScope(const SafepointScope &) = delete;
    SafepointScope &operator=(const SafepointScope &) = delete;

  private:
    Stats &S;
  };
  bool inSafepoint() const { return SafepointDepth > 0; }

  // -- String compatibility shim --------------------------------------------
  // Fixed names land in the same slots as their StatId; unknown names go
  // to an ordered side map so ad-hoc counters still work. Dynamic-name
  // writes are guarded: with >1 shard they must be inside a SafepointScope.
  void add(const std::string &Name, uint64_t Delta = 1) {
    StatId Id = idForName(Name);
    if (Id != StatId::NumIds)
      add(Id, Delta);
    else
      dynamicSlot(Name) += Delta;
  }
  void set(const std::string &Name, uint64_t Value) {
    StatId Id = idForName(Name);
    if (Id != StatId::NumIds)
      set(Id, Value);
    else
      dynamicSlot(Name) = Value;
  }
  void max(const std::string &Name, uint64_t Value) {
    StatId Id = idForName(Name);
    if (Id != StatId::NumIds) {
      max(Id, Value);
      return;
    }
    uint64_t &Slot = dynamicSlot(Name);
    if (Value > Slot)
      Slot = Value;
  }
  uint64_t get(const std::string &Name) const {
    StatId Id = idForName(Name);
    if (Id != StatId::NumIds)
      return get(Id);
    auto It = Dynamic.find(Name);
    return It == Dynamic.end() ? 0 : It->second;
  }
  bool has(const std::string &Name) const {
    StatId Id = idForName(Name);
    if (Id != StatId::NumIds)
      return has(Id);
    return Dynamic.count(Name) != 0;
  }

  /// Snapshot of every touched counter, name-ordered (table/JSON output),
  /// folded across shards.
  std::map<std::string, uint64_t> all() const;

  /// Every fixed counter folded into one value-shard — the allocation-free
  /// snapshot the epoch fold takes inside a collection pause (no string
  /// map nodes; ~half a KB of memcpy-able state).
  StatsShard folded() const;
  /// The dynamic-name side map (read at safepoints alongside folded()).
  const std::map<std::string, uint64_t> &dynamicCounters() const {
    return Dynamic;
  }

  void clear() {
    for (auto &S : Shards)
      S->clear();
    Dynamic.clear();
  }

  /// Renders "name = value" lines for human consumption (folded).
  std::string render() const;

private:
  /// Fold \p Id across every shard per its statFold rule.
  uint64_t foldOne(StatId Id) const;
  /// Resolves the side-map slot for a dynamic name, enforcing the
  /// safepoint rule when more than one shard exists.
  uint64_t &dynamicSlot(const std::string &Name);
  [[noreturn]] void dynamicGuardFailure(const std::string &Name) const;

  std::vector<std::unique_ptr<StatsShard>> Shards;
  StatsShard *Base;
  int SafepointDepth = 0;
  std::map<std::string, uint64_t> Dynamic;
};

} // namespace tfgc

#endif // TFGC_SUPPORT_STATS_H
