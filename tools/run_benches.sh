#!/usr/bin/env sh
# Runs every bench binary in JSON mode, writing BENCH_<name>.json at the
# repo root. These files are the perf trajectory of the repo: re-run after
# a perf-relevant change and diff the counters/timings against the
# committed baselines.
#
# Usage: tools/run_benches.sh [build-dir]   (default: build)
set -eu

ROOT=$(cd "$(dirname "$0")/.." && pwd)
BUILD=${1:-"$ROOT/build"}
BENCH_DIR="$BUILD/bench"

if [ ! -d "$BENCH_DIR" ]; then
  echo "error: $BENCH_DIR not found — build first:" >&2
  echo "  cmake -B build -S . && cmake --build build -j" >&2
  exit 1
fi

for NAME in mutator heap_space pause metadata_size liveness gcpoints \
            poly tasking frame_init generational heap_profile monitor \
            observe flight heap_graph; do
  BIN="$BENCH_DIR/bench_$NAME"
  if [ ! -x "$BIN" ]; then
    echo "skip: $BIN not built" >&2
    continue
  fi
  echo "== bench_$NAME =="
  "$BIN" --json "$ROOT/BENCH_$NAME.json" \
         --benchmark_min_time=0.05
done

echo "done: $(ls "$ROOT"/BENCH_*.json | wc -l) JSON files at $ROOT"
