# Empty dependencies file for bench_metadata_size.
# This may be replaced when dependencies are built.
