//===- core/AppelCollector.cpp --------------------------------------------===//

#include "core/AppelCollector.h"

#include <cassert>

using namespace tfgc;

AppelCollector::AppelCollector(GcAlgorithm Algo, size_t HeapBytes, Stats &St,
                               const IrProgram &Prog, const CodeImage &Img,
                               TypeContext &Types, AppelMetadata *AM,
                               bool GlogerDummies, size_t NurseryBytes)
    : Collector(ValueModel::TagFree, Algo, HeapBytes, St, NurseryBytes),
      Prog(Prog), Img(Img), Types(Types), AM(AM),
      GlogerDummies(GlogerDummies), Eng(Types, St, &Tel) {}

void AppelCollector::traceRemset(Space &Sp) {
  if (remset().empty())
    return;
  // As in GoldbergCollector: the barrier only buffers ground-typed
  // stores, so each slot is retraced through a closure for its recorded
  // static type, sharing the collection's closure arena.
  TagFreeTracer Tr(Prog, Img, Eng, Sp, St, TraceMethod::Appel, nullptr,
                   nullptr, AM, GlogerDummies, &Tel, Prof);
  TgEnv Env;
  for (const RemsetEntry &E : remset()) {
    St.add(StatId::GcSlotsTraced);
    *E.Slot = Tr.traceTg(*E.Slot, Eng.eval(E.Ty, Env));
  }
}

std::vector<const TypeGc *>
AppelCollector::resolveBinds(TaskStack &Stack, uint32_t Idx,
                             TypeGcEngine &Eng, TagFreeTracer &Tr) {
  FrameInfo &Fr = Stack.Frames[Idx];
  const IrFunction &Fn = Prog.fn(Fr.FuncId);
  if (Fn.TypeParams.empty())
    return {};

  St.add(StatId::GcChainSteps);
  uint32_t CallerIdx = Fr.DynamicLink;
  assert(CallerIdx != NoFrame &&
         "polymorphic frame with no caller (main must be monomorphic)");
  FrameInfo &Caller = Stack.Frames[CallerIdx];
  const IrFunction &CallerFn = Prog.fn(Caller.FuncId);

  // Resolve the caller first — this recursion is the repeated stack
  // traversal the paper criticizes.
  std::vector<const TypeGc *> CallerBinds =
      resolveBinds(Stack, CallerIdx, Eng, Tr);
  TgEnv CEnv;
  CEnv.Params = &CallerFn.TypeParams;
  CEnv.Binds = CallerBinds.data();

  Word GcWord = Img.gcWordAt(Caller.PendingSiteAddr);
  assert(GcWord != CodeImage::OmittedGcWord);
  const CallSiteInfo &S = Prog.site((CallSiteId)GcWord);

  std::vector<const TypeGc *> Binds;
  if (S.Kind == SiteKind::Direct) {
    assert(S.Callee == Fr.FuncId);
    for (Type *T : S.CalleeTypeInst)
      Binds.push_back(Eng.eval(T, CEnv));
  } else {
    assert(S.Kind == SiteKind::Indirect);
    const TypeGc *FunTg = Eng.eval(S.ClosureTy, CEnv);
    for (const ClosureParamPath &P :
         AM->closureDescriptor(Fr.FuncId).ParamPaths)
      Binds.push_back(Tr.bindParam(P, FunTg));
  }
  return Binds;
}

void AppelCollector::traceRoots(RootSet &Roots, Space &Sp) {
  Eng.reset();
  TagFreeTracer Tr(Prog, Img, Eng, Sp, St, TraceMethod::Appel, nullptr,
                   nullptr, AM, GlogerDummies, &Tel, Prof);

  for (TaskStack *Stack : Roots.Stacks) {
    if (Stack->Frames.empty())
      continue;
    // Newest to oldest, following dynamic links (Figure 2's direction).
    uint32_t Idx = (uint32_t)(Stack->Frames.size() - 1);
    while (Idx != NoFrame) {
      FrameInfo &Fr = Stack->Frames[Idx];
      const IrFunction &Fn = Prog.fn(Fr.FuncId);
      St.add(StatId::GcFramesTraced);

      std::vector<const TypeGc *> Binds;
      if (!Fn.TypeParams.empty()) {
        // The repeated caller-chain walk is Appel's analogue of the
        // pointer-reversal pass, so it is charged to the same phase.
        PhaseScope Chain(&Tel, GcPhase::PtrReversal);
        Binds = resolveBinds(*Stack, Idx, Eng, Tr);
      }
      TgEnv Env;
      Env.Params = &Fn.TypeParams;
      Env.Binds = Binds.data();

      {
        PhaseScope Dispatch(&Tel, GcPhase::FrameDispatch);
        Tr.traceFrame(Stack->frameSlots(Fr), AM->procDescriptor(Fr.FuncId),
                      &Env);
      }
      Idx = Fr.DynamicLink;
    }
  }
}
