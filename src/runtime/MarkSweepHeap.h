//===- runtime/MarkSweepHeap.h - Mark-sweep heap ----------------*- C++ -*-===//
///
/// \file
/// A non-moving heap with segregated free lists, supporting the paper's
/// remark that the method "will support mark/sweep collection as well".
/// Because tag-free objects carry no headers, the allocator keeps a side
/// registry of blocks for the sweep phase; the collector supplies
/// reachability (it knows sizes from types). The registry is the
/// documented substitution for the size information a real implementation
/// would derive from its block map.
///
/// The heap grows by adding segments (objects never move). Each segment
/// carries a mark bitmap (one bit per word) and its own block index, so
/// the per-object collector operations are branch-and-bit cheap:
///
///   tryMark/isMarked   O(1) — segment lookup (last-segment cache, then a
///                      binary search over the sorted segment bounds) plus
///                      one bit test/set; no hashing, no node allocation
///   sweep              one flat pass over each segment's block index
///                      consulting the bitmap — one bit test per block
///   contains           binary search over the sorted segment bounds
///
//===----------------------------------------------------------------------===//

#ifndef TFGC_RUNTIME_MARKSWEEPHEAP_H
#define TFGC_RUNTIME_MARKSWEEPHEAP_H

#include "runtime/Value.h"

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

namespace tfgc {

class MarkSweepHeap {
public:
  explicit MarkSweepHeap(size_t SegmentBytes);

  /// Allocates \p Words words; nullptr when full (caller collects or
  /// grows).
  Word *tryAllocate(size_t Words);

  /// True if tryAllocate(\p Words) would succeed.
  bool canAllocate(size_t Words) const;

  /// Adds another segment of the initial size.
  void addSegment();

  // -- Collector interface --------------------------------------------------
  void beginMark();
  /// Marks \p Obj; returns true on first visit.
  bool tryMark(const Word *Obj) {
    uint32_t S = segmentOf((uintptr_t)Obj);
    Segment &Seg = Segments[S];
    size_t Off = (size_t)((uintptr_t)Obj - Seg.Base) / sizeof(Word);
    uint64_t &Bits = Seg.MarkBits[Off >> 6];
    uint64_t Bit = (uint64_t)1 << (Off & 63);
    if (Bits & Bit)
      return false;
    Bits |= Bit;
    return true;
  }
  bool isMarked(const Word *Obj) const {
    uint32_t S = segmentOf((uintptr_t)Obj);
    const Segment &Seg = Segments[S];
    size_t Off = (size_t)((uintptr_t)Obj - Seg.Base) / sizeof(Word);
    return (Seg.MarkBits[Off >> 6] >> (Off & 63)) & 1;
  }
  /// Lock-free read of the mark bit (parallel alreadyVisited fast path).
  bool isMarkedAtomic(const Word *Obj) const {
    uint32_t S = segmentOf((uintptr_t)Obj);
    const Segment &Seg = Segments[S];
    size_t Off = (size_t)((uintptr_t)Obj - Seg.Base) / sizeof(Word);
    std::atomic_ref<uint64_t> Bits(
        const_cast<uint64_t &>(Seg.MarkBits[Off >> 6]));
    return (Bits.load(std::memory_order_acquire) >> (Off & 63)) & 1;
  }
  /// Parallel-phase mark claim: atomic fetch-or on the segment bitmap, so
  /// exactly one of any set of racing GC workers sees the first visit.
  /// tryMark() and tryMarkAtomic() must not interleave within one phase.
  bool tryMarkAtomic(const Word *Obj) {
    uint32_t S = segmentOf((uintptr_t)Obj);
    Segment &Seg = Segments[S];
    size_t Off = (size_t)((uintptr_t)Obj - Seg.Base) / sizeof(Word);
    uint64_t Bit = (uint64_t)1 << (Off & 63);
    std::atomic_ref<uint64_t> Bits(Seg.MarkBits[Off >> 6]);
    return !(Bits.fetch_or(Bit, std::memory_order_acq_rel) & Bit);
  }

  /// Frees every unmarked block; returns bytes reclaimed.
  size_t sweep();

  /// True if \p P points into any segment (verification support). Binary
  /// search over the sorted segment bounds.
  bool contains(Word P) const { return findSegment((uintptr_t)P) >= 0; }

  size_t capacityBytes() const {
    return Segments.size() * SegmentWords * sizeof(Word);
  }
  size_t usedBytes() const { return UsedWords * sizeof(Word); }
  uint64_t bytesAllocatedTotal() const { return BytesAllocatedTotal; }
  size_t numBlocks() const { return NumBlocks; }
  size_t numSegments() const { return Segments.size(); }

  /// Census hooks: live blocks/words recorded at the end of the most
  /// recent sweep (before any post-collection mutator allocation). 0
  /// before the first sweep.
  uint64_t liveBlocksAfterSweep() const { return LastSweepLiveBlocks; }
  uint64_t liveWordsAfterSweep() const { return LastSweepLiveWords; }

private:
  /// A live allocation inside one segment. 32-bit offsets are plenty:
  /// segments are capped far below 2^32 words.
  struct Block {
    uint32_t Off;   ///< Word offset of the block within its segment.
    uint32_t Words; ///< Block size in words.
  };

  struct Segment {
    std::unique_ptr<Word[]> Mem;
    uintptr_t Base = 0, End = 0;
    std::vector<uint64_t> MarkBits; ///< One bit per word.
    /// Block index, in allocation order (sweep needs no particular order:
    /// liveness is one bitmap test per block).
    std::vector<Block> Blocks;
  };

  /// A free block: segment index + word offset (+ size for the overflow
  /// list; bin membership implies the size for binned blocks).
  struct FreeRef {
    uint32_t Seg;
    uint32_t Off;
  };
  struct FreeBlock {
    uint32_t Seg;
    uint32_t Off;
    uint32_t Words;
  };

  size_t SegmentWords;
  std::vector<Segment> Segments;
  /// Segment indices ordered by base address (segments come from the
  /// system allocator, so creation order is not address order).
  std::vector<uint32_t> SegOrder;
  Word *Bump = nullptr, *BumpEnd = nullptr;
  uint32_t BumpSeg = 0;
  /// Free lists for block sizes 1..MaxBin; larger blocks are rare and go
  /// to the overflow list (first fit).
  static constexpr size_t MaxBin = 64;
  std::vector<std::vector<FreeRef>> Bins;
  std::vector<FreeBlock> OverflowFree;
  /// Marking has strong locality, so remember the last segment hit.
  /// Atomic (relaxed) because parallel mark workers share the cache; a
  /// stale read only costs the binary-search fallback.
  mutable std::atomic<uint32_t> LastSeg{0};
  size_t UsedWords = 0;
  size_t NumBlocks = 0;
  uint64_t BytesAllocatedTotal = 0;
  uint64_t LastSweepLiveBlocks = 0;
  uint64_t LastSweepLiveWords = 0;

  Word *segWord(uint32_t Seg, uint32_t Off) {
    return Segments[Seg].Mem.get() + Off;
  }

  /// Segment containing \p P, or -1. Checks the last-hit cache before the
  /// binary search.
  int findSegment(uintptr_t P) const {
    if (!Segments.empty()) {
      uint32_t Hint = LastSeg.load(std::memory_order_relaxed);
      const Segment &Cached = Segments[Hint];
      if (P >= Cached.Base && P < Cached.End)
        return (int)Hint;
    }
    // upper_bound over bases: the candidate is the last segment whose
    // base is <= P.
    int Lo = 0, Hi = (int)SegOrder.size() - 1, Found = -1;
    while (Lo <= Hi) {
      int Mid = (Lo + Hi) / 2;
      const Segment &S = Segments[SegOrder[(size_t)Mid]];
      if (P < S.Base) {
        Hi = Mid - 1;
      } else if (P >= S.End) {
        Lo = Mid + 1;
      } else {
        Found = (int)SegOrder[(size_t)Mid];
        break;
      }
    }
    if (Found >= 0)
      LastSeg.store((uint32_t)Found, std::memory_order_relaxed);
    return Found;
  }

  /// As findSegment, but the pointer must be in the heap (collector
  /// invariant on the mark path).
  uint32_t segmentOf(uintptr_t P) const;

  void registerBlock(uint32_t Seg, uint32_t Off, size_t Words);
};

} // namespace tfgc

#endif // TFGC_RUNTIME_MARKSWEEPHEAP_H
