//===- support/HeapProfile.h - Tag-free heap profiler -----------*- C++ -*-===//
///
/// \file
/// Heap profiling that rides the tag-free trace instead of per-object
/// headers. The paper's central machinery — exact type reconstruction for
/// every live object at collection time — already produces, for free, the
/// facts a heap profiler normally pays header bytes for. Three layers:
///
///  * **Allocation-site attribution.** Lowering assigns every allocation
///    opcode a dense AllocSiteId; the VM's allocation path bumps a flat
///    per-site counter and appends (address, site) to an allocation log.
///    No hashing, no branching beyond the enable check; off by default.
///
///  * **Typed live snapshots.** During a collection's trace, the same
///    first-visit hook the telemetry census uses attributes each object's
///    words to its reconstructed shape (CensusKind) and — via a side table
///    keyed by object address, maintained across copies and promotions —
///    to the site that allocated it. The side table is rebuilt from the
///    visit stream each collection: a visit maps the object's *old*
///    address to its site and records the *new* address for the next
///    collection, so the table follows objects through semispace flips,
///    nursery evacuation, and promotion without touching the mutator.
///
///  * **Retention diagnostics.** Optionally the visit stream also records
///    an object list; after the trace the profiler scans the live objects'
///    payloads against the recorded address set to recover the reference
///    graph, computes retained sizes via a dominator tree (Cooper-Harvey-
///    Kennedy over the rooted graph), and reports the top-N dominators
///    with a sample root path (stack frame + slot from the frame roots).
///
/// The profiler is paused during the post-GC verify pass (which re-runs
/// the tracers) exactly like the telemetry census, so its per-collection
/// tallies see each live object once. Snapshot invariant: the per-kind
/// byte totals of a snapshot sum to the bytes the collection covered
/// (full heap for full/major collections, survivors + promotions for a
/// minor), and the per-site object totals sum to the same object count.
///
//===----------------------------------------------------------------------===//

#ifndef TFGC_SUPPORT_HEAPPROFILE_H
#define TFGC_SUPPORT_HEAPPROFILE_H

#include "runtime/Value.h"
#include "support/Telemetry.h"

#include <array>
#include <cstdint>
#include <functional>
#include <iosfwd>
#include <string>
#include <vector>

namespace tfgc {

class HeapGraph;

/// Debug label of one allocation site (mirrors gcmeta's AllocSiteDebug;
/// duplicated here so the support layer does not depend on the IR).
struct AllocSiteDesc {
  std::string Func;
  uint32_t Line = 0;
  uint32_t Col = 0;
  std::string TypeStr;
};

/// A labeled stack root captured for the retention pass.
struct HeapRoot {
  uint32_t Func = ~0u; ///< Index into the function-name table.
  uint32_t Slot = 0;
  Word Value = 0;
};

/// One retained-size report row.
struct RetainerInfo {
  Word Addr = 0;
  uint32_t Site = ~0u;
  CensusKind Kind = CensusKind::NumKinds;
  uint64_t SelfBytes = 0;
  uint64_t RetainedBytes = 0;
  std::vector<std::string> Path; ///< Sample root path, root first.
};

class HeapProfiler {
public:
  /// Site id used for objects whose allocation predates profiling (or
  /// whose address was never logged).
  static constexpr uint32_t UnknownSite = ~0u;

  struct Tally {
    uint64_t Objects = 0;
    uint64_t Words = 0;
  };

  /// Cumulative lifetime statistics of one allocation site (ages are
  /// measured in collections the object was subject to — a tenured
  /// object sits out the minors, so under the generational algorithm
  /// this reads as "minors survived" until promotion).
  struct SiteLifetime {
    /// Objects that reached age exactly 1 / 2 / 4 / 8 — the survival
    /// curve. Monotone non-increasing by construction (reaching age 4
    /// implies having reached 2).
    std::array<uint64_t, 4> Survived{};
    /// Age-at-death histogram, bucketed by ageBucket().
    std::array<uint64_t, 8> DeathHist{};
    uint64_t Deaths = 0;
    uint64_t PromotedObjects = 0;
    /// Census words (payload + tagged header) promoted to tenured —
    /// sums across sites to `gc.promoted_words`.
    uint64_t PromotedWords = 0;
  };

  /// The ages the survival curve samples.
  static constexpr std::array<uint32_t, 4> SurvivalAges = {1, 2, 4, 8};

  /// Histogram bucket of an age: 0,1,2,3 exact, then 4-7, 8-15, 16-31,
  /// 32+.
  static uint32_t ageBucket(uint64_t Age) {
    if (Age < 4)
      return (uint32_t)Age;
    if (Age < 8)
      return 4;
    if (Age < 16)
      return 5;
    if (Age < 32)
      return 6;
    return 7;
  }

  /// The profile of one collection (the latest one traced). Overwritten
  /// per collection; `tfgc --heap-snapshot` serializes the last one.
  struct Snapshot {
    bool Valid = false;
    uint64_t Seq = 0;
    GcEventKind Kind = GcEventKind::Full;
    uint64_t CoveredBytes = 0; ///< Live bytes the trace covered.
    uint64_t Objects = 0;
    uint64_t Words = 0;
    std::array<Tally, NumCensusKinds> ByKind{};
    /// Indexed by AllocSiteId; [numSites()] is the unknown bucket. Empty
    /// when site tracking is off.
    std::vector<Tally> BySite;
    bool HasGenSplit = false;
    Tally Nursery, Tenured;
    std::vector<RetainerInfo> Retainers;
    bool RetainersComputed = false;
    /// Age observations of this collection's visits (one per visited
    /// object when site tracking is on): total and ageBucket() histogram.
    /// Invariant: AgeObservations == Objects.
    uint64_t AgeObservations = 0;
    std::array<uint64_t, 8> AgeHist{};

    uint64_t kindBytes() const {
      uint64_t S = 0;
      for (const Tally &T : ByKind)
        S += T.Words;
      return S * sizeof(Word);
    }
  };

  // -- Configuration (driver / test harness) --------------------------------

  /// Master switch; every hook is a cheap no-op while disabled.
  void setEnabled(bool E) { Enabled = E; }
  bool enabled() const { return Enabled; }

  /// Installs the allocation-site table and turns site attribution on.
  void setSites(std::vector<AllocSiteDesc> S);
  size_t numSites() const { return Sites.size(); }
  bool siteTracking() const { return !Sites.empty(); }

  /// Function names for labeling retention roots ("name:slotN").
  void setFunctionNames(std::vector<std::string> Names) {
    FuncNames = std::move(Names);
  }

  /// Report the top \p N retainers after each full/major collection
  /// (0 disables the retention pass entirely).
  void setRetainers(unsigned N) { TopRetainers = N; }
  bool wantsRetention() const { return Enabled && TopRetainers > 0; }

  /// Object words include a header word under the tagged model; the edge
  /// scan must skip it and filter candidates by the pointer tag.
  void setTaggedHeaders(bool T) { TaggedHeaders = T; }

  void setLabel(std::string L) { Label = std::move(L); }

  /// Attaches the heap-graph dumper; beginCollection asks it whether to
  /// capture this collection's graph and the visit/edge hooks feed it.
  void setHeapGraph(HeapGraph *G) { Graph = G; }

  // -- Heap-graph hooks (tracer hot path) -----------------------------------

  /// True while the current collection's graph is being captured (the
  /// tracers cache this at construction; it never changes mid-trace).
  /// False while paused — the verify pass re-runs the tracers.
  bool edgesActive() const { return GraphActive && !Paused; }

  /// Forwards one traced reference to the graph (only called under
  /// edgesActive()). Out-of-line so this header needn't see HeapGraph.
  void recordEdge(Word Parent, uint32_t Field, Word Child);

  /// The collector captures stack roots when either consumer needs them.
  bool wantsRoots() const { return wantsRetention() || GraphActive; }

  // -- Mutator hot path -----------------------------------------------------

  /// Called after every successful allocation. \p Addr is the payload
  /// address (what the tracers later see as the object reference). One
  /// counter bump + one push_back; the per-site counts are derived from
  /// the log at collection time so the mutator touches as little profiler
  /// state as possible.
  void recordAlloc(uint32_t AllocId, Word Addr) {
    if (!Enabled)
      return;
    ++AllocTotal;
    if (AllocId < SiteAllocCounts.size())
      AddrLog.push_back({Addr, AllocId});
  }

  uint64_t allocTotal() const { return AllocTotal; }
  uint64_t allocCount(uint32_t Site) const {
    uint64_t N = SiteAllocCounts[Site];
    for (const AddrSite &E : AddrLog) // Pending, not yet folded in.
      if (E.Site == Site)
        ++N;
    return N;
  }

  // -- Collection lifecycle (driven by the collector) -----------------------

  /// Starts profiling one collection: resets the per-collection tallies
  /// and merges the allocation log into the address side table.
  /// \p IsTenured classifies *new* (post-trace) addresses for the
  /// nursery/tenured split; pass nullptr outside the generational
  /// algorithm.
  void beginCollection(GcEventKind Kind, std::function<bool(Word)> IsTenured);

  /// A copying grow-loop retraces the survivors in a fresh round; the
  /// previous round's new addresses become this round's old addresses.
  void beginTraceRound();

  /// While paused, visits are ignored (the post-GC verify pass re-runs
  /// the tracing code).
  void setPaused(bool P) { Paused = P; }

  /// First-visit hook, paired with the telemetry census: \p Words is the
  /// object's census size (payload, +1 header word under tagged).
  void recordVisit(Word OldRef, Word NewRef, CensusKind K, uint64_t Words);

  /// Ends the collection: rebuilds the side table for the next cycle
  /// (keeping unvisited entries that \p KeepUnvisited says survived — the
  /// tenured objects a minor collection never traces), snapshots the
  /// tallies, and (when enabled and the collection covered the full
  /// graph) runs the retention pass over \p Roots.
  void finishCollection(uint64_t CoveredBytes,
                        const std::function<bool(Word)> &KeepUnvisited,
                        std::vector<HeapRoot> Roots);

  bool inCollection() const { return InCollection; }
  uint64_t visitObjectsTotal() const { return VisitObjectsTotal; }

  // -- Results --------------------------------------------------------------

  const Snapshot &snapshot() const { return Snap; }
  const AllocSiteDesc &site(uint32_t Id) const { return Sites[Id]; }

  /// Cumulative lifetime stats of a site (pass numSites() for the
  /// unknown bucket). Empty-table safe only when siteTracking().
  const SiteLifetime &lifetime(uint32_t Site) const { return Life[Site]; }
  const std::vector<SiteLifetime> &lifetimes() const { return Life; }

  /// Cumulative per-site allocation counts with the pending log folded
  /// in (same accounting as allocCount, vectorized for the dump).
  std::vector<uint64_t> allocCountsNow() const;

  /// Sum of per-site promoted words — equals `gc.promoted_words`.
  uint64_t promotedWordsAttributed() const {
    uint64_t S = 0;
    for (const SiteLifetime &L : Life)
      S += L.PromotedWords;
    return S;
  }

  /// Serializes the latest snapshot (plus cumulative allocation counts)
  /// as one JSON document; `tools/heap_report.py` renders and diffs it.
  void writeSnapshotJson(std::ostream &OS) const;

private:
  /// Per-entry age bits: low 24 bits = collections survived (saturating),
  /// bit 31 = the object has been observed in tenured space (promotion
  /// already attributed).
  static constexpr uint32_t AgeMask = 0xffffffu;
  static constexpr uint32_t TenuredBit = 1u << 31;

  struct AddrSite {
    Word Addr;
    uint32_t Site;
    uint32_t AgeBits = 0;
  };
  struct ObjRec {
    Word Addr;
    uint32_t Site;
    CensusKind Kind;
    uint64_t Words;
  };

  void resetCollectionTallies();
  void buildLookupIndex();
  /// Finds (and consumes) the Lookup entry for \p OldRef; SIZE_MAX on
  /// miss.
  size_t lookupIndex(Word OldRef);
  /// Folds the unconsumed, not-kept Lookup entries into the death
  /// histograms (they were live last cycle and were not visited by a
  /// full-coverage trace — dead).
  void accountDeaths(const std::function<bool(Word)> &Keep);
  void computeRetention(const std::vector<HeapRoot> &Roots);

  bool Enabled = false;
  bool Paused = false;
  bool InCollection = false;
  bool TaggedHeaders = false;
  unsigned TopRetainers = 0;
  std::string Label;

  std::vector<AllocSiteDesc> Sites;
  std::vector<std::string> FuncNames;
  std::vector<uint64_t> SiteAllocCounts; ///< Flat, indexed by AllocSiteId.
  uint64_t AllocTotal = 0;
  uint64_t VisitObjectsTotal = 0;

  /// Address → site across collections. Table holds the survivors of the
  /// last collection (sorted by address); AddrLog the allocations since.
  /// beginCollection merges them into Lookup; visits consume Lookup
  /// entries and refill NextTable with post-trace addresses.
  ///
  /// Under the generational algorithm the table is partitioned: entries
  /// whose object lives in tenured space sit in TenSet, which a minor
  /// collection never merges, scans, or sorts — a minor trace cannot
  /// visit a tenured object, so its lookup set is nursery-bounded
  /// (Table young survivors + AddrLog) no matter how large the tenured
  /// generation grows. Promotions append to TenSet at minor finish;
  /// major/full collections consume TenSet wholesale and rebuild it from
  /// the visit stream.
  std::vector<AddrSite> Table;
  std::vector<AddrSite> TenSet; ///< Unsorted; bump addresses are unique.
  std::vector<AddrSite> AddrLog;
  std::vector<AddrSite> Lookup;
  std::vector<AddrSite> NextTable;
  std::vector<uint8_t> Consumed; ///< Parallel to Lookup.
  bool MinorScope = false; ///< Current collection traces the nursery only.
  bool FirstRound = true; ///< Ages bump once per collection, not per round.

  /// O(1) visit-time lookup: word-granular slots, each holding
  /// (epoch << 24 | Lookup index). The sorted table is clustered into
  /// contiguous address regions (a >64 KiB gap starts a new region — the
  /// young, tenured, and semispace blocks are separate allocations that
  /// can sit anywhere in memory), and the regions share one compact slot
  /// array, so gaps between spaces cost nothing. Stale slots are skipped
  /// by epoch compare, so rebuilding never clears the array. When the
  /// summed spans outgrow DenseSlotCap (or the address set fragments into
  /// too many regions), lookupSite falls back to binary search.
  struct DenseRegion {
    Word Base = 0;
    Word End = 0; ///< Last entry address (inclusive).
    uint64_t SlotOff = 0;
  };
  static constexpr uint64_t DenseSlotCap = 1u << 22; ///< 16 MiB aux max.
  static constexpr size_t MaxDenseRegions = 16;
  std::vector<uint32_t> Dense; ///< 8-bit epoch | 24-bit Lookup index.
  std::vector<DenseRegion> Regions;
  bool DenseValid = false;
  uint32_t DenseEpoch = 0; ///< Runs 1..255; Dense is cleared on wrap.
  std::vector<AddrSite> MergeScratch;

  /// Per-collection tallies (current collection while tracing).
  std::array<Tally, NumCensusKinds> CurKind{};
  std::vector<Tally> CurSite; ///< numSites()+1; last = unknown.
  Tally CurNursery, CurTenured;
  uint64_t CurObjects = 0, CurWords = 0;
  GcEventKind CurEventKind = GcEventKind::Full;
  std::function<bool(Word)> IsTenured;
  uint64_t Collections = 0;

  /// Cumulative per-site lifetime stats; numSites()+1 entries (last =
  /// unknown bucket), sized with the site table.
  std::vector<SiteLifetime> Life;
  /// Per-collection age observations (reset per trace round with the
  /// other tallies; each visited object contributes its current age).
  uint64_t CurAgeObs = 0;
  std::array<uint64_t, 8> CurAgeHist{};

  HeapGraph *Graph = nullptr;
  bool GraphActive = false; ///< This collection's graph is being captured.

  /// Live-object records for the retention pass (only filled when
  /// wantsRetention()).
  std::vector<ObjRec> Objects;

  Snapshot Snap;
};

} // namespace tfgc

#endif // TFGC_SUPPORT_HEAPPROFILE_H
