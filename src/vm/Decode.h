//===- vm/Decode.h - Pre-decoded instruction stream -------------*- C++ -*-===//
///
/// \file
/// The VM's hot loop no longer interprets the heavyweight IR Instr
/// records. At VM (or tasking-runtime) construction the program is
/// decoded once into a dense, value-model-specialized instruction stream:
///
///  * every tagged/tag-free decision is resolved at decode time into a
///    per-model opcode (DOp), so the hot path has no model branches;
///  * constants are pre-encoded into the value model's word (including
///    self-tagged float constants, which fold to a plain immediate load);
///  * labels resolve to decoded instruction indices;
///  * with fusion enabled, the ir/Fusion.h plan collapses the dominant
///    2-3 opcode windows into superinstructions, each carrying its
///    constituent count and per-constituent opcode classes so step
///    accounting and profile attribution stay bit-identical to the
///    unfused stream.
///
/// The same DInstr array serves both execution loops: the computed-goto
/// direct-threaded loop dispatches through the Handler pointer (filled
/// lazily from the label table by the first threaded VM), the portable
/// switch loop through Op. A DecodedProgram is immutable after handler
/// fill and shared by every task of a tasking runtime.
///
//===----------------------------------------------------------------------===//

#ifndef TFGC_VM_DECODE_H
#define TFGC_VM_DECODE_H

#include "ir/Ir.h"
#include "runtime/Value.h"
#include "support/Monitor.h"

#include <vector>

namespace tfgc {

/// Decoded opcodes. TF/TG suffixes are the tag-free/tagged value-model
/// specializations; the Imm-infixed and 2/Br/Ret-suffixed entries are the
/// superinstructions. The X-macro keeps the enum, the switch loop, the
/// threaded label table and the handler definitions in lockstep.
#define TFGC_DOP_LIST(X)                                                       \
  X(LoadImm) X(LoadFloatBox) X(Move)                                           \
  X(AddTF) X(SubTF) X(MulTF) X(DivTF) X(ModTF)                                 \
  X(AddTG) X(SubTG) X(MulTG) X(DivTG) X(ModTG)                                 \
  X(NegTF) X(NegTG) X(NotTF) X(NotTG)                                          \
  X(LtTF) X(LeTF) X(GtTF) X(GeTF) X(EqTF) X(NeTF)                              \
  X(LtTG) X(LeTG) X(GtTG) X(GeTG) X(EqTG) X(NeTG)                              \
  X(FAddTF) X(FSubTF) X(FMulTF) X(FDivTF) X(FNegTF) X(I2FTF)                   \
  X(FAddTG) X(FSubTG) X(FMulTG) X(FDivTG) X(FNegTG) X(I2FTG)                   \
  X(FLtTF) X(FEqTF) X(FLtTG) X(FEqTG)                                          \
  X(PrintTF) X(PrintTG)                                                        \
  X(MakeTuple) X(MakeData) X(MakeClosure) X(MakeRef)                           \
  X(GetField) X(GetTagTF) X(GetTagTG) X(SetClosureField)                       \
  X(RefLoad) X(RefStore)                                                       \
  X(Jump) X(BranchTF) X(BranchTG)                                              \
  X(CallDirect) X(CallIndirectTF) X(CallIndirectTG) X(Return) X(Abort)         \
  X(AddImmTF) X(SubImmTF) X(MulImmTF) X(DivImmTF) X(ModImmTF)                  \
  X(AddImmTG) X(SubImmTG) X(MulImmTG) X(DivImmTG) X(ModImmTG)                  \
  X(CmpImmLtTF) X(CmpImmLeTF) X(CmpImmGtTF) X(CmpImmGeTF) X(CmpImmEqTF)        \
  X(CmpImmNeTF)                                                                \
  X(CmpImmLtTG) X(CmpImmLeTG) X(CmpImmGtTG) X(CmpImmGeTG) X(CmpImmEqTG)        \
  X(CmpImmNeTG)                                                                \
  X(CmpBrLtTF) X(CmpBrLeTF) X(CmpBrGtTF) X(CmpBrGeTF) X(CmpBrEqTF)             \
  X(CmpBrNeTF)                                                                 \
  X(CmpBrLtTG) X(CmpBrLeTG) X(CmpBrGtTG) X(CmpBrGeTG) X(CmpBrEqTG)             \
  X(CmpBrNeTG)                                                                 \
  X(CmpImmBrLtTF) X(CmpImmBrLeTF) X(CmpImmBrGtTF) X(CmpImmBrGeTF)              \
  X(CmpImmBrEqTF) X(CmpImmBrNeTF)                                              \
  X(CmpImmBrLtTG) X(CmpImmBrLeTG) X(CmpImmBrGtTG) X(CmpImmBrGeTG)              \
  X(CmpImmBrEqTG) X(CmpImmBrNeTG)                                              \
  X(MoveRet) X(GetField2) X(TailCallSelf)

enum class DOp : uint16_t {
#define TFGC_DOP_ENUM(N) N,
  TFGC_DOP_LIST(TFGC_DOP_ENUM)
#undef TFGC_DOP_ENUM
      NumOps
};
inline constexpr size_t NumDOps = (size_t)DOp::NumOps;

const char *dopName(DOp Op);

/// One decoded instruction. Field use by op (unused fields are zero):
///   A     destination slot (cmp dst for fused compare-branches)
///   B     first source slot / direct callee / indirect self slot
///   C     second source slot / field index / arg count / const dst slot /
///         branch-true target
///   D     branch-false target / call flags / second fused dst
///   Imm   pre-encoded constant word / ctor or entry header word /
///         site code-image address (calls)
///   Site  CallSiteId for allocating/calling ops (InvalidSite otherwise)
///   Extra operand-pool index / jump target / packed (src2 | f2 << 16)
struct DInstr {
  const void *Handler = nullptr; ///< Threaded dispatch target.
  uint32_t A = 0, B = 0, C = 0, D = 0;
  Word Imm = 0;
  CallSiteId Site = InvalidSite;
  uint32_t Extra = 0;
  uint16_t Op = 0; ///< DOp (switch dispatch).
  uint8_t NSteps = 1;
  /// OpClass of each constituent step (fused ops carry up to 3); keeps
  /// sample attribution identical to the unfused stream.
  uint8_t Cls[3] = {0, 0, 0};
};

/// Call-op D flags.
inline constexpr uint32_t CallFlagCanTriggerGc = 1;

struct DFunc {
  std::vector<DInstr> Code;
  /// Lowered source of this function (slot types for write barriers).
  const IrFunction *Ir = nullptr;
};

struct DecodeConfig {
  ValueModel Model = ValueModel::TagFree;
  bool Fuse = true;
  /// Tagged model: self-tag in-range doubles instead of boxing.
  bool FloatSelfTag = true;
  /// Direct self-recursive tail calls reuse the caller's frame instead of
  /// pushing a new activation (the dominant call shape in a language
  /// whose only loop is recursion).
  bool TailCalls = true;
};

struct DecodedProgram {
  DecodeConfig Cfg;
  std::vector<DFunc> Fns;
  /// Variadic operands (argument/field slot indices), referenced by
  /// DInstr::Extra.
  std::vector<uint32_t> Pool;
  /// Decode-time count of superinstructions emitted (tests/diagnostics).
  uint64_t FusedStatic = 0;
  /// Set once by the first threaded VM after filling Handler pointers.
  bool HandlersFilled = false;
};

/// Decodes \p P for one value model / fusion configuration.
DecodedProgram decodeProgram(const IrProgram &P, const DecodeConfig &Cfg);

} // namespace tfgc

#endif // TFGC_VM_DECODE_H
