# Empty dependencies file for tagfree_append.
# This may be replaced when dependencies are built.
