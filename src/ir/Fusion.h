//===- ir/Fusion.h - Superinstruction peephole planning ---------*- C++ -*-===//
///
/// \file
/// Peephole pass over lowered IR that finds the 2-3 instruction windows
/// the VM's decoder may fuse into superinstructions. The dominant
/// sequences come straight out of the PR-5 opcode-class profiles of the
/// arith/float kernels: constant-feed arithmetic (LoadInt;Prim),
/// compare-and-branch (Prim;Branch and LoadInt;Prim;Branch), tail moves
/// (Move;Return) and double field reads (GetField;GetField).
///
/// The plan is pure IR-level pattern matching — value-model independent
/// and safe by construction:
///
///  * no instruction after the first of a window is a jump target
///    (forward-only jumps make the label-target set exact);
///  * no window contains an allocation or call site, so GC points, frame
///    suspension points and allocation order are untouched;
///  * every slot the original sequence wrote is still written (except a
///    Move whose frame dies at the fused Return), so the slot state at
///    every GC point — and therefore every collector counter — is
///    bit-identical to the unfused execution.
///
/// The VM decoder consumes the plan and accounts each fused instruction
/// as its constituent steps, keeping vm.steps and the sampling profiler's
/// class attribution identical across dispatch modes.
///
//===----------------------------------------------------------------------===//

#ifndef TFGC_IR_FUSION_H
#define TFGC_IR_FUSION_H

#include "ir/Ir.h"

namespace tfgc {

enum class FusePattern : uint8_t {
  ArithImm,     ///< LoadInt t; Prim(+,-,*,mod) d, s, t
  CmpImm,       ///< LoadInt t; Prim(cmp) d, s, t
  CmpBranch,    ///< Prim(cmp) d, a, b; Branch d
  CmpImmBranch, ///< LoadInt t; Prim(cmp) d, s, t; Branch d
  MoveReturn,   ///< Move d, s; Return d
  GetField2,    ///< GetField d1, s1.f1; GetField d2, s2.f2
};

const char *fusePatternName(FusePattern P);

/// One fusable window: \p Len instructions starting at \p Start.
struct FusedSeq {
  uint32_t Start = 0;
  uint8_t Len = 0;
  FusePattern Pattern = FusePattern::ArithImm;
};

/// Greedy left-to-right covering plan (longest match first); windows are
/// non-overlapping and in ascending Start order.
std::vector<FusedSeq> planFusion(const IrFunction &F);

} // namespace tfgc

#endif // TFGC_IR_FUSION_H
