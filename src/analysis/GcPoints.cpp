//===- analysis/GcPoints.cpp ----------------------------------------------===//

#include "analysis/GcPoints.h"

using namespace tfgc;

static bool isAllocInstr(const Instr &I, const GcPointOptions &Opts) {
  switch (I.Op) {
  case Opcode::MakeTuple:
  case Opcode::MakeClosure:
  case Opcode::MakeRef:
    return true;
  case Opcode::MakeData:
    return !I.Srcs.empty(); // Nullary constructors are immediates.
  case Opcode::LoadFloat:
    return Opts.FloatsAllocate;
  case Opcode::Prim:
    if (!Opts.FloatsAllocate)
      return false;
    switch (I.Prim) {
    case PrimVal::FAdd:
    case PrimVal::FSub:
    case PrimVal::FMul:
    case PrimVal::FDiv:
    case PrimVal::FNeg:
    case PrimVal::IntToFloat:
      return true;
    default:
      return false;
    }
  default:
    return false;
  }
}

GcPointResult tfgc::computeGcPoints(IrProgram &P, const GcPointOptions &Opts) {
  GcPointResult R;
  size_t N = P.Functions.size();
  R.MayCollect.assign(N, false);

  // Seed: functions containing an allocating instruction.
  for (const IrFunction &F : P.Functions)
    for (const Instr &I : F.Code)
      if (isAllocInstr(I, Opts)) {
        R.MayCollect[F.Id] = true;
        break;
      }

  // Conservative higher-order component: any closure function may be the
  // target of any indirect call.
  auto AnyClosureCollects = [&] {
    for (const IrFunction &F : P.Functions)
      if (F.IsClosure && R.MayCollect[F.Id])
        return true;
    return false;
  };

  // Fixpoint: S_i = S_{i-1} U { f | f calls into S_{i-1} }  (section 5.1).
  bool Changed = true;
  while (Changed) {
    Changed = false;
    ++R.FixpointIterations;
    bool IndirectMayCollect = AnyClosureCollects();
    for (const CallSiteInfo &S : P.Sites) {
      if (R.MayCollect[S.Caller])
        continue;
      bool Triggers = false;
      switch (S.Kind) {
      case SiteKind::Alloc:
        // Already seeded; Alloc sites exist in MayCollect callers only
        // when the instruction allocates under these options.
        Triggers = isAllocInstr(P.fn(S.Caller).Code[S.InstrIdx], Opts);
        break;
      case SiteKind::Direct:
        Triggers = R.MayCollect[S.Callee];
        break;
      case SiteKind::Indirect:
        Triggers = IndirectMayCollect;
        break;
      }
      if (Triggers) {
        R.MayCollect[S.Caller] = true;
        Changed = true;
      }
    }
  }

  // Annotate the sites.
  bool IndirectMayCollect = AnyClosureCollects();
  for (CallSiteInfo &S : P.Sites) {
    switch (S.Kind) {
    case SiteKind::Alloc:
      S.CanTriggerGc = isAllocInstr(P.fn(S.Caller).Code[S.InstrIdx], Opts);
      break;
    case SiteKind::Direct:
      S.CanTriggerGc = R.MayCollect[S.Callee];
      break;
    case SiteKind::Indirect:
      S.CanTriggerGc = IndirectMayCollect;
      break;
    }
    ++R.SitesTotal;
    if (!S.CanTriggerGc)
      ++R.SitesCannotTrigger;
  }
  return R;
}

void tfgc::assumeAllSitesTrigger(IrProgram &P) {
  for (CallSiteInfo &S : P.Sites)
    S.CanTriggerGc = true;
}
