# Empty dependencies file for tfgc_gcmeta.
# This may be replaced when dependencies are built.
