//===- gcmeta/AppelMeta.h - Appel single-descriptor scheme ------*- C++ -*-===//
///
/// \file
/// The paper's reading of Appel '89 (section 1.1.1): exactly one descriptor
/// per *procedure definition*, covering every slot of the frame regardless
/// of the current execution point. Consequences the paper criticizes and
/// we reproduce:
///
///   * every local must be created and initialized at procedure entry
///     (the VM zeroes frames under this strategy — measured by E9);
///   * all variables are assumed live, so dead structures are retained
///     (measured by E5);
///   * polymorphic frames are resolved by walking *down* the dynamic chain
///     (newest to oldest), re-deriving instantiations as needed (E7),
///     instead of Goldberg's single oldest-to-newest pass.
///
//===----------------------------------------------------------------------===//

#ifndef TFGC_GCMETA_APPELMETA_H
#define TFGC_GCMETA_APPELMETA_H

#include "gcmeta/InterpretedMeta.h"

namespace tfgc {

class AppelMetadata {
public:
  explicit AppelMetadata(TypeContext &Ctx) : Table(Ctx) {}

  void build(const IrProgram &P, const ReconstructResult &RR);

  DescriptorTable &descriptors() { return Table; }
  /// The single per-procedure descriptor.
  const FrameDescriptor &procDescriptor(FuncId Fn) const {
    return ProcDescs[Fn];
  }
  const ClosureDescriptor &closureDescriptor(FuncId Fn) const {
    return ClosureDescs[Fn];
  }

  size_t sizeBytes() const;

private:
  DescriptorTable Table;
  std::vector<FrameDescriptor> ProcDescs;
  std::vector<ClosureDescriptor> ClosureDescs;
};

} // namespace tfgc

#endif // TFGC_GCMETA_APPELMETA_H
