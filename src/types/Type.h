//===- types/Type.h - Semantic types ----------------------------*- C++ -*-===//
///
/// \file
/// Semantic types for MiniML. Types form a mutable graph during inference
/// (union-find via Var instances, Rémy-style levels for generalization).
/// After inference the graph is stable and downstream phases (lowering, GC
/// metadata generation) read it directly.
///
/// Quantified type parameters of polymorphic functions are represented by
/// *rigid* Var nodes carrying a ParamIndex; these are exactly the "type
/// parameters" the paper's polymorphic frame GC routines are parameterized
/// over (paper section 3).
///
//===----------------------------------------------------------------------===//

#ifndef TFGC_TYPES_TYPE_H
#define TFGC_TYPES_TYPE_H

#include <cassert>
#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

namespace tfgc {

class Type;
class TypeContext;

/// One constructor of a datatype. Field types may reference the datatype's
/// own parameters (rigid vars owned by the DatatypeInfo).
struct CtorInfo {
  std::string Name;
  std::vector<Type *> Fields;
};

/// A (possibly parameterized) datatype: `datatype ('a,'b) t = ...`.
class DatatypeInfo {
public:
  std::string Name;
  std::vector<Type *> Params; ///< Rigid vars standing for 'a, 'b, ...
  std::vector<CtorInfo> Ctors;
  unsigned Id = 0; ///< Dense id assigned by the TypeContext.

  /// True if constructor \p Index has no fields (represented as a small
  /// immediate at run time).
  bool isNullary(unsigned Index) const {
    return Ctors[Index].Fields.empty();
  }
};

enum class TypeKind : uint8_t {
  Int,
  Bool,
  Unit,
  Float,
  Var,
  Fun,   ///< (T1, ..., Tn) -> R, n-ary and uncurried.
  Tuple, ///< T1 * ... * Tn (n >= 2; unit is its own kind).
  Data,  ///< Datatype application.
  Ref,   ///< Mutable cell.
};

/// A semantic type node. Var nodes are mutable (union-find Instance link);
/// all other nodes are immutable after construction.
class Type {
public:
  TypeKind getKind() const { return Kind; }

  // -- Var accessors ------------------------------------------------------
  bool isVar() const { return Kind == TypeKind::Var; }
  int varId() const { assert(isVar()); return VarId; }
  int level() const { assert(isVar()); return Level; }
  void setLevel(int L) { assert(isVar()); Level = L; }
  Type *instance() const { assert(isVar()); return Instance; }
  void bind(Type *T) { assert(isVar() && !Instance && !RigidFlag); Instance = T; }
  bool isRigid() const { return isVar() && RigidFlag; }
  int paramIndex() const { assert(isRigid()); return ParamIdx; }
  void makeRigid(int ParamIndex) {
    assert(isVar() && !Instance);
    RigidFlag = true;
    ParamIdx = ParamIndex;
  }

  // -- Structured accessors -----------------------------------------------
  const std::vector<Type *> &args() const { return Args; }
  Type *arg(unsigned I) const { return Args[I]; }
  unsigned numArgs() const { return (unsigned)Args.size(); }
  Type *result() const { assert(Kind == TypeKind::Fun); return Result; }
  DatatypeInfo *data() const { assert(Kind == TypeKind::Data); return Data; }
  Type *refElem() const { assert(Kind == TypeKind::Ref); return Args[0]; }

  /// Follows Instance links to the representative type.
  Type *resolved() {
    Type *T = this;
    while (T->Kind == TypeKind::Var && T->Instance)
      T = T->Instance;
    return T;
  }

private:
  friend class TypeContext;

  explicit Type(TypeKind Kind) : Kind(Kind) {}

  TypeKind Kind;
  // Var state.
  int VarId = 0;
  int Level = 0;
  Type *Instance = nullptr;
  bool RigidFlag = false;
  int ParamIdx = -1;
  // Structured state.
  std::vector<Type *> Args;
  Type *Result = nullptr;
  DatatypeInfo *Data = nullptr;
};

/// Owns all Type nodes and DatatypeInfos; provides builders, unification,
/// generalization, and rendering.
class TypeContext {
public:
  TypeContext();

  // -- Builders -----------------------------------------------------------
  Type *intTy() { return IntTy; }
  Type *boolTy() { return BoolTy; }
  Type *unitTy() { return UnitTy; }
  Type *floatTy() { return FloatTy; }
  Type *freshVar(int Level);
  Type *makeFun(std::vector<Type *> Params, Type *Result);
  Type *makeTuple(std::vector<Type *> Elems);
  Type *makeData(DatatypeInfo *Info, std::vector<Type *> Args);
  Type *makeRef(Type *Elem);

  // -- Datatypes ----------------------------------------------------------
  /// Creates and registers a datatype shell; constructors are added by the
  /// caller (via addCtor) so recursive references work.
  DatatypeInfo *createDatatype(const std::string &Name, unsigned NumParams);
  void addCtor(DatatypeInfo *Info, const std::string &Name,
               std::vector<Type *> Fields);
  DatatypeInfo *lookupDatatype(const std::string &Name) const;
  /// Returns {info, ctorIndex} or {nullptr, 0}.
  std::pair<DatatypeInfo *, unsigned> lookupCtor(const std::string &Name) const;
  DatatypeInfo *listInfo() const { return ListTy; }
  const std::vector<DatatypeInfo *> &datatypes() const { return DatatypeOrder; }

  /// Instantiates the field types of constructor \p CtorIdx of \p Info with
  /// the given type arguments.
  std::vector<Type *> instantiateCtorFields(DatatypeInfo *Info,
                                            unsigned CtorIdx,
                                            const std::vector<Type *> &Args);

  // -- Unification --------------------------------------------------------
  /// Unifies A and B. Returns false (without diagnostics) on mismatch or
  /// occurs-check failure.
  bool unify(Type *A, Type *B);

  // -- Generalization -----------------------------------------------------
  struct Scheme {
    std::vector<Type *> Params; ///< Rigid vars, ParamIndex == position.
    Type *Body = nullptr;
    bool isPoly() const { return !Params.empty(); }
  };

  /// Turns every unbound Var above \p Level into a rigid parameter of a new
  /// scheme over \p T.
  Scheme generalize(Type *T, int Level);

  /// Clones the scheme body replacing each rigid parameter with a fresh var
  /// at \p Level. Returns the body unchanged for monomorphic schemes.
  Type *instantiate(const Scheme &S, int Level);

  /// Substitutes Map[rigid var] into \p T, cloning only where needed.
  Type *substitute(Type *T, const std::unordered_map<Type *, Type *> &Map);

  /// Binds any unbound, non-rigid vars in T to unit (post-inference
  /// defaulting for ambiguous types like a bare `Nil`).
  void defaultFreeVars(Type *T);

  /// Collects the distinct rigid vars occurring in T, in first-occurrence
  /// order.
  void collectRigidVars(Type *T, std::vector<Type *> &Out);

  /// Canonical rendering: rigid vars as %N (param index), free vars as ?id.
  std::string render(Type *T);

private:
  std::vector<std::unique_ptr<Type>> Types;
  std::vector<std::unique_ptr<DatatypeInfo>> Datatypes;
  std::vector<DatatypeInfo *> DatatypeOrder;
  std::unordered_map<std::string, DatatypeInfo *> DatatypeByName;
  std::unordered_map<std::string, std::pair<DatatypeInfo *, unsigned>>
      CtorByName;
  int NextVarId = 0;

  Type *IntTy, *BoolTy, *UnitTy, *FloatTy;
  DatatypeInfo *ListTy;

  Type *alloc(TypeKind Kind);
  bool occurs(Type *Var, Type *T);
  void adjustLevels(Type *T, int Level);
};

using TypeScheme = TypeContext::Scheme;

} // namespace tfgc

#endif // TFGC_TYPES_TYPE_H
