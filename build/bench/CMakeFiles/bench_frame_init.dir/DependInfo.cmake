
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_frame_init.cpp" "bench/CMakeFiles/bench_frame_init.dir/bench_frame_init.cpp.o" "gcc" "bench/CMakeFiles/bench_frame_init.dir/bench_frame_init.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/driver/CMakeFiles/tfgc_driver.dir/DependInfo.cmake"
  "/root/repo/build/src/tasking/CMakeFiles/tfgc_tasking.dir/DependInfo.cmake"
  "/root/repo/build/src/workloads/CMakeFiles/tfgc_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/vm/CMakeFiles/tfgc_vm.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/tfgc_core.dir/DependInfo.cmake"
  "/root/repo/build/src/gcmeta/CMakeFiles/tfgc_gcmeta.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/tfgc_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/ir/CMakeFiles/tfgc_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/types/CMakeFiles/tfgc_types.dir/DependInfo.cmake"
  "/root/repo/build/src/frontend/CMakeFiles/tfgc_frontend.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/tfgc_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/tfgc_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
