file(REMOVE_RECURSE
  "CMakeFiles/tasking_sim.dir/tasking_sim.cpp.o"
  "CMakeFiles/tasking_sim.dir/tasking_sim.cpp.o.d"
  "tasking_sim"
  "tasking_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tasking_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
