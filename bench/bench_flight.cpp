//===- bench/bench_flight.cpp - E16: flight recorder cost -----------------===//
///
/// What does the always-on flight recorder cost the mutator? Every
/// instrumentation site is one null-pointer check when the recorder is
/// off; when on, an event is one steady_clock read plus one 32-byte
/// store into the producer's private SPSC ring — no allocation, no
/// locks, no shared-cache traffic — and all file I/O happens inside
/// world-stopped drains (end of each collection pause, run end), never
/// on the mutator's clock between collections.
///
///   off   no recorder attached: the permanent baseline.
///   on    --flight-out semantics in-process: a FlightRecorder with the
///         default 64 KiB rings, the VM's ring wired, the collector's
///         GC/worker rings wired, drains to a real file.
///
/// In the sequential VM the fuel-poll site never arms (no coordinator),
/// so 'on' pays only the GC mirrors + TLAB-free alloc path: the ratio
/// prices the pure recording overhead of the telemetry mirrors.
///
/// Acceptance line: on/off <= 1.02 on both workloads (wall-clock medians
/// over interleaved runs).
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "core/Collector.h"
#include "support/FlightRecorder.h"

#include <algorithm>
#include <array>
#include <chrono>
#include <cstdio>

using namespace tfgc;
using namespace tfgc::bench;
namespace wl = tfgc::workloads;

namespace {

constexpr size_t HeapBytes = 1 << 16;
constexpr size_t GenHeapBytes = 1 << 20;
constexpr size_t GenNurseryBytes = 1 << 13;

const char *FlightTmp = "/tmp/tfgc_bench_flight.bin";

enum FlightMode { Off = 0, On = 1 };

const char *modeName(FlightMode M) { return M == Off ? "off" : "on"; }

struct RunOut {
  uint64_t WallNs = 0;
  uint64_t Records = 0;
};

/// One compile-free run, recorder attached exactly as runTfgc attaches it
/// for a sequential --flight-out run.
Stats flightRun(CompiledProgram &P, GcAlgorithm A, size_t Heap,
                size_t Nursery, FlightMode Mode, RunOut *Out = nullptr,
                bool RecordJson = false) {
  Stats St;
  std::string Err;
  auto Col = P.makeCollector(GcStrategy::CompiledTagFree, A, Heap, St, &Err,
                             Nursery);
  if (!Col) {
    std::fprintf(stderr, "makeCollector failed: %s\n", Err.c_str());
    std::abort();
  }
  std::unique_ptr<FlightRecorder> F;
  if (Mode == On) {
    F = std::make_unique<FlightRecorder>(/*NumTasks=*/1, /*NumWorkers=*/1,
                                         /*BufferKb=*/64);
    if (!F->openFile(FlightTmp, Err)) {
      std::fprintf(stderr, "flight open failed: %s\n", Err.c_str());
      std::abort();
    }
    Col->setFlightRecorder(F.get());
  }
  VmOptions VO = defaultVmOptions(GcStrategy::CompiledTagFree);
  if (Mode == On) {
    VO.Flight = &F->taskRing(0);
    VO.Flight->record(FlightEventType::ThreadStart);
  }
  Vm M(P.Prog, P.Image, *P.Types, *Col, VO);
  auto T0 = std::chrono::steady_clock::now();
  RunResult R = M.run();
  auto T1 = std::chrono::steady_clock::now();
  if (!R.Ok) {
    std::fprintf(stderr, "bench run failed: %s\n", R.Error.c_str());
    std::abort();
  }
  M.flushCounters();
  if (Mode == On) {
    VO.Flight->record(FlightEventType::ThreadExit);
    F->finish();
  }
  if (Out) {
    Out->WallNs =
        (uint64_t)std::chrono::duration_cast<std::chrono::nanoseconds>(T1 -
                                                                       T0)
            .count();
    Out->Records = F ? F->recordsFiled() : 0;
  }
  if (RecordJson)
    if (JsonSink *Sink = JsonSink::active())
      Sink->record((std::string("compiled-tagfree+flight_") +
                    modeName(Mode))
                       .c_str(),
                   A, Heap, St, Nursery);
  return St;
}

/// Samples both modes round-robin (after one untimed warmup) so drift
/// hits each mode equally.
std::array<uint64_t, 2> medianWallNs(CompiledProgram &P, GcAlgorithm A,
                                     size_t Heap, size_t Nursery,
                                     int Reps = 11) {
  flightRun(P, A, Heap, Nursery, Off);
  std::array<std::vector<uint64_t>, 2> Ns;
  for (int I = 0; I < Reps; ++I)
    for (FlightMode Mode : {Off, On}) {
      RunOut Out;
      flightRun(P, A, Heap, Nursery, Mode, &Out);
      Ns[Mode].push_back(Out.WallNs);
    }
  std::array<uint64_t, 2> Med;
  for (int M = 0; M < 2; ++M) {
    std::sort(Ns[M].begin(), Ns[M].end());
    Med[M] = Ns[M][Ns[M].size() / 2];
  }
  return Med;
}

void reportCost() {
  struct Workload {
    const char *Name;
    std::string Src;
    GcAlgorithm Algo;
    size_t Heap, Nursery;
  } Workloads[] = {
      {"arith", wl::arithKernel(200000), GcAlgorithm::Copying, HeapBytes, 0},
      {"generationalChurn", wl::generationalChurn(200, 20, 400),
       GcAlgorithm::Generational, GenHeapBytes, GenNurseryBytes},
  };

  tableHeader("E16: flight recorder cost (compiled tag-free, sequential)",
              "wall-clock medians over 11 interleaved runs; 'ratio' is "
              "on/off; 'records' is what the on-run filed to disk",
              {"workload", "mode", "median ms", "ratio", "records"});
  bool Pass = true;
  for (Workload &W : Workloads) {
    jsonWorkload(W.Name);
    auto P = compileOrDie(W.Src);
    std::array<uint64_t, 2> Med = medianWallNs(*P, W.Algo, W.Heap, W.Nursery);
    for (FlightMode Mode : {Off, On}) {
      double Ratio = Med[Off] ? (double)Med[Mode] / (double)Med[Off] : 0.0;
      RunOut Out;
      flightRun(*P, W.Algo, W.Heap, W.Nursery, Mode, &Out,
                /*RecordJson=*/true);
      tableCell(W.Name);
      tableCell(modeName(Mode));
      tableCell((double)Med[Mode] / 1e6);
      tableCell(Ratio);
      tableCell(Out.Records);
      tableEnd();
      if (Mode == On && Ratio > 1.02)
        Pass = false;
    }
  }
  std::printf(
      "\non/off <= 1.02 on both workloads: %s\n",
      Pass ? "PASS"
           : "not met this run — recording is one clock read + one "
             "32-byte ring store\nper event and all file I/O rides "
             "inside collection pauses; misses here are\nmachine noise, "
             "re-run before reading anything into the ratio");
  std::remove(FlightTmp);
}

std::unique_ptr<CompiledProgram> &arithProg() {
  static auto P = compileOrDie(wl::arithKernel(200000));
  return P;
}
std::unique_ptr<CompiledProgram> &churnProg() {
  static auto P = compileOrDie(wl::generationalChurn(200, 20, 400));
  return P;
}

void BM_Arith(benchmark::State &State, FlightMode Mode) {
  for (auto _ : State) {
    RunOut Out;
    Stats St = flightRun(*arithProg(), GcAlgorithm::Copying, HeapBytes, 0,
                         Mode, &Out);
    State.counters["steps"] = (double)St.get(StatId::VmSteps);
    benchmark::DoNotOptimize(Out.WallNs);
  }
}

void BM_GenChurn(benchmark::State &State, FlightMode Mode) {
  for (auto _ : State) {
    RunOut Out;
    Stats St = flightRun(*churnProg(), GcAlgorithm::Generational,
                         GenHeapBytes, GenNurseryBytes, Mode, &Out);
    State.counters["collections"] = (double)St.get(StatId::GcCollections);
    State.counters["records"] = (double)Out.Records;
    benchmark::DoNotOptimize(Out.WallNs);
  }
}

BENCHMARK_CAPTURE(BM_Arith, off, Off);
BENCHMARK_CAPTURE(BM_Arith, on, On);
BENCHMARK_CAPTURE(BM_GenChurn, off, Off);
BENCHMARK_CAPTURE(BM_GenChurn, on, On);

} // namespace

int main(int argc, char **argv) {
  JsonSink Sink("flight", argc, argv);
  reportCost();
  std::printf(
      "\nExpected shape: 'on' tracks 'off' within noise — the GC-side "
      "mirrors record\ninside pauses the run already pays for, and the "
      "mutator-side sites are a\nnull check when quiet. A black box the "
      "mutator cannot feel is the point.\n\n");
  benchmark::Initialize(&argc, argv);
  Sink.runBenchmarksAndWrite();
  return 0;
}
