//===- runtime/Heap.h - Semispace copying heap ------------------*- C++ -*-===//
///
/// \file
/// A semispace heap driven by the collectors. The heap knows nothing about
/// object layouts — under the tag-free model layout lives exclusively in
/// the compiler-generated GC metadata, so the heap only provides raw
/// allocation, space tests, and forwarding.
///
/// Forwarding without headers: during a collection a side bitmap over
/// from-space (one bit per word, alive only for the duration of the
/// collection) marks objects whose word 0 has been overwritten with the
/// forwarding address. The bitmap is the documented substitution for
/// "check whether word 0 points into to-space" and is charged to the
/// collector in the space accounting.
///
//===----------------------------------------------------------------------===//

#ifndef TFGC_RUNTIME_HEAP_H
#define TFGC_RUNTIME_HEAP_H

#include "runtime/Value.h"

#include <cassert>
#include <cstddef>
#include <memory>
#include <vector>

namespace tfgc {

class Heap {
public:
  explicit Heap(size_t CapacityBytes);

  // -- Mutator interface ---------------------------------------------------
  /// Allocates \p Words words; returns nullptr when the space is full.
  /// The check compares against the remaining word count — computing
  /// `Alloc + Words` first would form a past-the-end pointer (UB) for
  /// adversarially large \p Words.
  Word *tryAllocate(size_t Words) {
    if (Words > (size_t)(End - Alloc))
      return nullptr;
    Word *P = Alloc;
    Alloc += Words;
    BytesAllocatedTotal += Words * sizeof(Word);
    return P;
  }

  size_t capacityBytes() const { return CapacityWords * sizeof(Word); }
  size_t usedBytes() const { return (size_t)(Alloc - Base) * sizeof(Word); }
  size_t freeWords() const { return (size_t)(End - Alloc); }
  uint64_t bytesAllocatedTotal() const { return BytesAllocatedTotal; }

  bool contains(Word P) const {
    return P >= (Word)(uintptr_t)Base && P < (Word)(uintptr_t)End;
  }

  // -- Collector interface --------------------------------------------------
  /// Starts a collection into a fresh to-space of \p NewCapacityWords
  /// (0 = keep the current capacity). From-space stays readable until
  /// endCollection().
  void beginCollection(size_t NewCapacityWords = 0);

  /// Allocates in to-space during a collection. Aborts on overflow (the
  /// caller sizes to-space to at least the live data).
  Word *allocateInToSpace(size_t Words) {
    assert(Collecting && "not collecting");
    assert(ToAlloc + Words <= ToEnd && "to-space overflow");
    Word *P = ToAlloc;
    ToAlloc += Words;
    return P;
  }

  bool isForwarded(const Word *Obj) const {
    size_t Index = Obj - Base;
    return (ForwardBits[Index >> 6] >> (Index & 63)) & 1;
  }
  Word forwardee(const Word *Obj) const {
    assert(isForwarded(Obj));
    return Obj[0];
  }
  void setForwarded(Word *Obj, Word NewAddr) {
    size_t Index = Obj - Base;
    ForwardBits[Index >> 6] |= (uint64_t)1 << (Index & 63);
    Obj[0] = NewAddr;
  }

  /// True while collecting and P points into from-space.
  bool inFromSpace(Word P) const {
    return P >= (Word)(uintptr_t)Base && P < (Word)(uintptr_t)End;
  }

  /// Discards from-space; to-space becomes the live space.
  void endCollection();

  bool collecting() const { return Collecting; }
  size_t forwardBitmapBytes() const { return ForwardBits.size() * 8; }

  /// Census hook: words that survived the most recent collection (the
  /// to-space fill level recorded at endCollection). 0 before the first
  /// collection.
  uint64_t survivorWords() const { return LastSurvivorWords; }

private:
  std::unique_ptr<Word[]> Space;   ///< Current (from-) space.
  std::unique_ptr<Word[]> ToSpace; ///< Only alive during a collection.
  Word *Base = nullptr, *Alloc = nullptr, *End = nullptr;
  Word *ToBase = nullptr, *ToAlloc = nullptr, *ToEnd = nullptr;
  size_t CapacityWords = 0;
  size_t ToCapacityWords = 0;
  std::vector<uint64_t> ForwardBits;
  bool Collecting = false;
  uint64_t BytesAllocatedTotal = 0;
  uint64_t LastSurvivorWords = 0;
};

} // namespace tfgc

#endif // TFGC_RUNTIME_HEAP_H
