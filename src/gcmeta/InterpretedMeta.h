//===- gcmeta/InterpretedMeta.h - Interpreted-method tables -----*- C++ -*-===//
///
/// \file
/// Frame and closure metadata for the interpreted method: the gc_word
/// leads to a *frame descriptor* (slot, type-descriptor) list, and the
/// collector interprets the descriptor graph while traversing the data.
/// Descriptors are shared program-wide, so the metadata is small; the
/// interpretation cost shows up in collection time (E3 vs E4).
///
//===----------------------------------------------------------------------===//

#ifndef TFGC_GCMETA_INTERPRETEDMETA_H
#define TFGC_GCMETA_INTERPRETEDMETA_H

#include "analysis/Reconstruct.h"
#include "gcmeta/CompiledRoutines.h" // OpenAction
#include "gcmeta/Descriptor.h"

#include <vector>

namespace tfgc {

struct FrameDescriptor {
  struct SlotDesc {
    SlotIndex Slot;
    DescId Desc;
  };
  /// Traced pointer-holding slots; the interpretation cost model lives in
  /// the per-field descriptor walk, not at the frame level.
  std::vector<SlotDesc> Slots;
  std::vector<OpenAction> Open;
  bool isNoTrace() const { return Slots.empty() && Open.empty(); }
};

struct ClosureDescriptor {
  uint32_t PayloadWords = 0;
  std::vector<FrameDescriptor::SlotDesc> Fields; ///< Slot = payload offset.
  std::vector<OpenAction> Open;
  std::vector<ClosureParamPath> ParamPaths;
};

class InterpretedMetadata {
public:
  explicit InterpretedMetadata(TypeContext &Ctx) : Table(Ctx) {}

  void build(const IrProgram &P, const ReconstructResult &RR);

  DescriptorTable &descriptors() { return Table; }
  const FrameDescriptor &siteDescriptor(CallSiteId Site) const {
    return FrameDescs[SiteToFrame[Site]];
  }
  const ClosureDescriptor &closureDescriptor(FuncId Fn) const {
    return ClosureDescs[Fn];
  }

  size_t numFrameDescriptors() const { return FrameDescs.size(); }
  /// Modeled size: descriptor table + 16 bytes per frame descriptor +
  /// 8 per slot entry.
  size_t sizeBytes() const;

private:
  DescriptorTable Table;
  std::vector<FrameDescriptor> FrameDescs;
  std::unordered_map<std::string, uint32_t> FrameDedup;
  std::vector<uint32_t> SiteToFrame;
  std::vector<ClosureDescriptor> ClosureDescs;
};

} // namespace tfgc

#endif // TFGC_GCMETA_INTERPRETEDMETA_H
