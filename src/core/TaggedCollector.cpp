//===- core/TaggedCollector.cpp -------------------------------------------===//

#include "core/TaggedCollector.h"

#include <vector>

using namespace tfgc;

Word TaggedCollector::traceWord(Space &Sp, std::vector<Word> &ScanList,
                                Word W, Stats &S, CensusCounts *Census) {
  // Non-pointers pass through unchanged: small ints (low bit 1), unit/
  // bool immediates, and self-tagged floats (low bits 0b010 after the
  // rotate — runtime/Value.h). Boxed floats still arrive as Raw-kind
  // heap objects and are visited like any other pointer.
  if (!isTaggedPointer(W))
    return W;
  Word NewRef;
  // tryClaim is the parallel arbitration seam (serial Spaces claim
  // unconditionally). The header read below is pre-claim safe — headers
  // live at payload[-1] and are never clobbered by forwarding.
  if (Sp.alreadyVisited(W, NewRef) || !Sp.tryClaim(W, NewRef))
    return NewRef;
  const Word *Old = reinterpret_cast<const Word *>(W);
  Word Header = Old[-1];
  NewRef = Sp.visitNew(W, headerSize(Header));
  S.add(StatId::GcObjectsVisited);
  S.add(StatId::GcWordsVisited, headerSize(Header) + 1);
  CensusKind K = headerKind(Header) == ObjKind::Scan ? CensusKind::TaggedScan
                                                     : CensusKind::Raw;
  if (Census)
    Census->record(K, headerSize(Header) + 1);
  else
    Tel.census(K, headerSize(Header) + 1);
  if (Prof && !Census) [[unlikely]]
    Prof->recordVisit(W, NewRef, K, headerSize(Header) + 1);
  if (headerKind(Header) == ObjKind::Scan)
    ScanList.push_back(NewRef);
  return NewRef;
}

void TaggedCollector::drainScanList(Space &Sp, std::vector<Word> &ScanList,
                                    Stats &S, CensusCounts *Census) {
  // Heap-graph edge capture is decided per collection (never during the
  // census-sink parallel path or the verify pass, which both re-scan).
  const bool EdgeRec = Prof && !Census && Prof->edgesActive();
  while (!ScanList.empty()) {
    Word Ref = ScanList.back();
    ScanList.pop_back();
    Word *Pl = Sp.payload(Ref);
    uint32_t Size = headerSize(Pl[-1]);
    for (uint32_t I = 0; I < Size; ++I) {
      Pl[I] = traceWord(Sp, ScanList, Pl[I], S, Census);
      if (EdgeRec) [[unlikely]]
        if (isTaggedPointer(Pl[I]))
          Prof->recordEdge(Ref, I, Pl[I]);
    }
  }
}

void TaggedCollector::traceOneStack(TaskStack &Stack, Space &Sp,
                                    std::vector<Word> &ScanList, Stats &S,
                                    CensusCounts *Census) {
  for (FrameInfo &Fr : Stack.Frames) {
    S.add(StatId::GcFramesTraced);
    Word *Slots = Stack.frameSlots(Fr);
    // No metadata: every slot of every frame is scanned.
    for (uint32_t I = 0; I < Fr.NumSlots; ++I) {
      S.add(StatId::GcSlotsTraced);
      Slots[I] = traceWord(Sp, ScanList, Slots[I], S, Census);
    }
  }
}

void TaggedCollector::traceRoots(RootSet &Roots, Space &Sp) {
  // Parallel path: each worker drains a private scan list; concurrently
  // discovered shared objects are arbitrated by the heap's claim/publish
  // words (mark bitmap fetch-or under mark-sweep).
  if (traceStacksParallel(
          Roots, Sp,
          [this](TaskStack &Stack, Space &WSp, Stats &WSt,
                 CensusCounts &WCensus) {
            std::vector<Word> ScanList;
            traceOneStack(Stack, WSp, ScanList, WSt, &WCensus);
            drainScanList(WSp, ScanList, WSt, &WCensus);
          }))
    return;

  std::vector<Word> ScanList;
  for (TaskStack *Stack : Roots.Stacks)
    traceOneStack(*Stack, Sp, ScanList, St, nullptr);
  drainScanList(Sp, ScanList, St, nullptr);
}

void TaggedCollector::traceRemset(Space &Sp) {
  // Remembered tenured slots are extra roots for a minor collection; the
  // header model needs no types, so each slot is retraced by its tag bit.
  std::vector<Word> ScanList;
  for (const RemsetEntry &E : remset()) {
    St.add(StatId::GcSlotsTraced);
    *E.Slot = traceWord(Sp, ScanList, *E.Slot, St, nullptr);
  }
  drainScanList(Sp, ScanList, St, nullptr);
}
