//===- vm/Decode.cpp ------------------------------------------------------===//

#include "vm/Decode.h"

#include "ir/Fusion.h"

#include <cassert>

using namespace tfgc;

const char *tfgc::dopName(DOp Op) {
  static const char *Names[] = {
#define TFGC_DOP_NAME(N) #N,
      TFGC_DOP_LIST(TFGC_DOP_NAME)
#undef TFGC_DOP_NAME
  };
  return (size_t)Op < NumDOps ? Names[(size_t)Op] : "?";
}

namespace {

/// Same coarse classes the pre-decode interpreter attributed samples to;
/// fused ops carry one class per constituent so profiles stay comparable.
OpClass classifyOp(Opcode Op) {
  switch (Op) {
  case Opcode::LoadInt:
  case Opcode::LoadFloat:
  case Opcode::LoadBool:
  case Opcode::LoadUnit:
  case Opcode::Move:
    return OpClass::Load;
  case Opcode::Prim:
  case Opcode::Print:
    return OpClass::Prim;
  case Opcode::MakeTuple:
  case Opcode::MakeData:
  case Opcode::MakeClosure:
  case Opcode::MakeRef:
    return OpClass::Alloc;
  case Opcode::GetField:
  case Opcode::GetTag:
  case Opcode::SetClosureField:
  case Opcode::RefLoad:
  case Opcode::RefStore:
    return OpClass::HeapAccess;
  case Opcode::Jump:
  case Opcode::Branch:
    return OpClass::Branch;
  case Opcode::Call:
  case Opcode::CallIndirect:
  case Opcode::Return:
    return OpClass::Call;
  default:
    return OpClass::Other;
  }
}

/// True when the direct call at \p I is a self-recursive tail call: its
/// result reaches a Return through nothing but result-renaming Moves and
/// Jumps, so the caller's activation is dead the moment the call
/// transfers and its frame can be reused. Restricted to *self* calls so
/// the dynamic chain a polymorphic collector walks (Appel reconstruction)
/// only ever elides frames with an identical type instantiation.
bool isSelfTailCall(const IrFunction &F, size_t I) {
  const Instr &Call = F.Code[I];
  if (Call.Callee != F.Id || Call.Srcs.size() > 16)
    return false;
  SlotIndex V = Call.Dst;
  size_t J = I + 1;
  for (unsigned Hops = 0; Hops < 64 && J < F.Code.size(); ++Hops) {
    const Instr &N = F.Code[J];
    if (N.Op == Opcode::Jump) {
      J = F.LabelTargets[N.Label];
      continue;
    }
    if (N.Op == Opcode::Move && N.Srcs[0] == V) {
      V = N.Dst;
      ++J;
      continue;
    }
    return N.Op == Opcode::Return && N.Srcs[0] == V;
  }
  return false;
}

/// Lt..Ne are contiguous in both PrimVal and every fused/plain compare
/// DOp family, so a kind maps by offset from the family's Lt member.
DOp cmpFamily(PrimVal P, DOp LtBase) {
  assert(P >= PrimVal::Lt && P <= PrimVal::Ne);
  return (DOp)((int)LtBase + ((int)P - (int)PrimVal::Lt));
}

/// Add..Mod, likewise.
DOp arithFamily(PrimVal P, DOp AddBase) {
  assert(P >= PrimVal::Add && P <= PrimVal::Mod);
  return (DOp)((int)AddBase + ((int)P - (int)PrimVal::Add));
}

class FnDecoder {
public:
  FnDecoder(const IrProgram &P, const IrFunction &F, const DecodeConfig &Cfg,
            DecodedProgram &Out)
      : P(P), F(F), Cfg(Cfg), Out(Out), TG(Cfg.Model == ValueModel::Tagged) {}

  void run(DFunc &D) {
    std::vector<FusedSeq> Plan;
    if (Cfg.Fuse)
      Plan = planFusion(F);

    // Map each original index to the window covering it (plan index), or
    // -1 for 1:1 instructions.
    std::vector<int32_t> WindowAt(F.Code.size(), -1);
    for (size_t W = 0; W < Plan.size(); ++W)
      for (uint32_t K = 0; K < Plan[W].Len; ++K)
        WindowAt[Plan[W].Start + K] = (int32_t)W;

    // Pass 1: decoded index of every original instruction. Members of a
    // window share the window's index (jumps only ever target the start;
    // planFusion guarantees it).
    NewIndex.assign(F.Code.size(), 0);
    uint32_t N = 0;
    for (size_t I = 0; I < F.Code.size(); ++I) {
      NewIndex[I] = N;
      int32_t W = WindowAt[I];
      bool LastOfUnit =
          W < 0 || I + 1 == Plan[W].Start + Plan[W].Len;
      if (LastOfUnit)
        ++N;
    }

    // Pass 2: emit.
    D.Ir = &F;
    D.Code.reserve(N);
    for (size_t I = 0; I < F.Code.size();) {
      int32_t W = WindowAt[I];
      if (W >= 0) {
        emitFused(D.Code, Plan[W]);
        ++Out.FusedStatic;
        I += Plan[W].Len;
      } else {
        emitOne(D.Code, F.Code[I], I);
        ++I;
      }
    }
    assert(D.Code.size() == N && "index map out of sync");
  }

private:
  const IrProgram &P;
  const IrFunction &F;
  const DecodeConfig &Cfg;
  DecodedProgram &Out;
  bool TG;
  std::vector<uint32_t> NewIndex;

  Word encodeInt(int64_t V) const { return TG ? tagInt(V) : (Word)V; }

  uint32_t target(LabelId L) const { return NewIndex[F.LabelTargets[L]]; }

  uint32_t pool(const std::vector<SlotIndex> &Srcs, size_t From = 0) {
    uint32_t Start = (uint32_t)Out.Pool.size();
    for (size_t K = From; K < Srcs.size(); ++K)
      Out.Pool.push_back(Srcs[K]);
    return Start;
  }

  DInstr base(DOp Op, OpClass C) const {
    DInstr D;
    D.Op = (uint16_t)Op;
    D.Cls[0] = (uint8_t)C;
    return D;
  }

  void emitOne(std::vector<DInstr> &Code, const Instr &I, size_t Idx) {
    OpClass C = classifyOp(I.Op);
    switch (I.Op) {
    case Opcode::LoadInt:
    case Opcode::LoadBool: {
      DInstr D = base(DOp::LoadImm, C);
      D.A = I.Dst;
      D.Imm = encodeInt(I.IntImm);
      Code.push_back(D);
      return;
    }
    case Opcode::LoadUnit: {
      DInstr D = base(DOp::LoadImm, C);
      D.A = I.Dst;
      D.Imm = encodeInt(0);
      Code.push_back(D);
      return;
    }
    case Opcode::LoadFloat: {
      // Tag-free floats are raw bits; self-taggable constants fold to a
      // plain immediate under the tagged model too. Only out-of-range
      // tagged constants keep an allocating load.
      Word W = 0;
      if (!TG) {
        DInstr D = base(DOp::LoadImm, C);
        D.A = I.Dst;
        D.Imm = floatToWord(I.FloatImm);
        Code.push_back(D);
        return;
      }
      if (Cfg.FloatSelfTag && trySelfTagFloat(I.FloatImm, W)) {
        DInstr D = base(DOp::LoadImm, C);
        D.A = I.Dst;
        D.Imm = W;
        Code.push_back(D);
        return;
      }
      DInstr D = base(DOp::LoadFloatBox, C);
      D.A = I.Dst;
      D.Imm = floatToWord(I.FloatImm);
      D.Site = I.Site;
      Code.push_back(D);
      return;
    }
    case Opcode::Move: {
      DInstr D = base(DOp::Move, C);
      D.A = I.Dst;
      D.B = I.Srcs[0];
      Code.push_back(D);
      return;
    }
    case Opcode::Prim:
      emitPrim(Code, I, C);
      return;
    case Opcode::Print: {
      DInstr D = base(TG ? DOp::PrintTG : DOp::PrintTF, C);
      D.B = I.Srcs[0];
      Code.push_back(D);
      return;
    }
    case Opcode::MakeTuple: {
      DInstr D = base(DOp::MakeTuple, C);
      D.A = I.Dst;
      D.C = (uint32_t)I.Srcs.size();
      D.Extra = pool(I.Srcs);
      D.Site = I.Site;
      Code.push_back(D);
      return;
    }
    case Opcode::MakeData: {
      if (I.Srcs.empty()) { // Nullary ctor: an immediate (class stays Alloc).
        DInstr D = base(DOp::LoadImm, C);
        D.A = I.Dst;
        D.Imm = encodeInt((int64_t)I.CtorIdx);
        Code.push_back(D);
        return;
      }
      DInstr D = base(DOp::MakeData, C);
      D.A = I.Dst;
      D.C = (uint32_t)I.Srcs.size();
      D.Imm = encodeInt((int64_t)I.CtorIdx);
      D.Extra = pool(I.Srcs);
      D.Site = I.Site;
      Code.push_back(D);
      return;
    }
    case Opcode::MakeClosure: {
      DInstr D = base(DOp::MakeClosure, C);
      D.A = I.Dst;
      D.C = (uint32_t)I.Srcs.size();
      D.Imm = encodeInt((int64_t)P.fn(I.Callee).EntryAddr);
      D.Extra = pool(I.Srcs);
      D.Site = I.Site;
      Code.push_back(D);
      return;
    }
    case Opcode::MakeRef: {
      DInstr D = base(DOp::MakeRef, C);
      D.A = I.Dst;
      D.B = I.Srcs[0];
      D.Site = I.Site;
      Code.push_back(D);
      return;
    }
    case Opcode::GetField: {
      DInstr D = base(DOp::GetField, C);
      D.A = I.Dst;
      D.B = I.Srcs[0];
      D.C = I.FieldIdx;
      Code.push_back(D);
      return;
    }
    case Opcode::GetTag: {
      DInstr D = base(TG ? DOp::GetTagTG : DOp::GetTagTF, C);
      D.A = I.Dst;
      D.B = I.Srcs[0];
      Code.push_back(D);
      return;
    }
    case Opcode::SetClosureField: {
      DInstr D = base(DOp::SetClosureField, C);
      D.B = I.Srcs[0];
      D.C = I.Srcs[1];
      D.D = I.FieldIdx;
      Code.push_back(D);
      return;
    }
    case Opcode::RefLoad: {
      DInstr D = base(DOp::RefLoad, C);
      D.A = I.Dst;
      D.B = I.Srcs[0];
      Code.push_back(D);
      return;
    }
    case Opcode::RefStore: {
      DInstr D = base(DOp::RefStore, C);
      D.B = I.Srcs[0];
      D.C = I.Srcs[1];
      Code.push_back(D);
      return;
    }
    case Opcode::Jump: {
      DInstr D = base(DOp::Jump, C);
      D.Extra = target(I.Label);
      Code.push_back(D);
      return;
    }
    case Opcode::Branch: {
      DInstr D = base(TG ? DOp::BranchTG : DOp::BranchTF, C);
      D.B = I.Srcs[0];
      D.C = target(I.Label);
      D.Extra = target(I.Label2);
      Code.push_back(D);
      return;
    }
    case Opcode::Call: {
      bool Tail = Cfg.TailCalls && isSelfTailCall(F, Idx);
      DInstr D = base(Tail ? DOp::TailCallSelf : DOp::CallDirect, C);
      D.A = I.Dst;
      D.B = I.Callee;
      D.C = (uint32_t)I.Srcs.size();
      D.D = P.site(I.Site).CanTriggerGc ? CallFlagCanTriggerGc : 0;
      D.Imm = P.site(I.Site).CodeAddr;
      D.Extra = pool(I.Srcs);
      D.Site = I.Site;
      Code.push_back(D);
      return;
    }
    case Opcode::CallIndirect: {
      DInstr D = base(TG ? DOp::CallIndirectTG : DOp::CallIndirectTF, C);
      D.A = I.Dst;
      D.B = I.Srcs[0];
      D.C = (uint32_t)(I.Srcs.size() - 1);
      D.D = P.site(I.Site).CanTriggerGc ? CallFlagCanTriggerGc : 0;
      D.Imm = P.site(I.Site).CodeAddr;
      D.Extra = pool(I.Srcs, 1);
      D.Site = I.Site;
      Code.push_back(D);
      return;
    }
    case Opcode::Return: {
      DInstr D = base(DOp::Return, C);
      D.B = I.Srcs[0];
      Code.push_back(D);
      return;
    }
    case Opcode::Abort:
      Code.push_back(base(DOp::Abort, C));
      return;
    }
    assert(false && "unhandled opcode");
  }

  void emitPrim(std::vector<DInstr> &Code, const Instr &I, OpClass C) {
    DInstr D;
    D.Cls[0] = (uint8_t)C;
    D.A = I.Dst;
    switch (I.Prim) {
    case PrimVal::Add:
    case PrimVal::Sub:
    case PrimVal::Mul:
    case PrimVal::Div:
    case PrimVal::Mod:
      D.Op = (uint16_t)arithFamily(I.Prim, TG ? DOp::AddTG : DOp::AddTF);
      D.B = I.Srcs[0];
      D.C = I.Srcs[1];
      break;
    case PrimVal::Neg:
      D.Op = (uint16_t)(TG ? DOp::NegTG : DOp::NegTF);
      D.B = I.Srcs[0];
      break;
    case PrimVal::Not:
      D.Op = (uint16_t)(TG ? DOp::NotTG : DOp::NotTF);
      D.B = I.Srcs[0];
      break;
    case PrimVal::Lt:
    case PrimVal::Le:
    case PrimVal::Gt:
    case PrimVal::Ge:
    case PrimVal::Eq:
    case PrimVal::Ne:
      D.Op = (uint16_t)cmpFamily(I.Prim, TG ? DOp::LtTG : DOp::LtTF);
      D.B = I.Srcs[0];
      D.C = I.Srcs[1];
      break;
    case PrimVal::FAdd:
    case PrimVal::FSub:
    case PrimVal::FMul:
    case PrimVal::FDiv:
      D.Op = (uint16_t)((int)(TG ? DOp::FAddTG : DOp::FAddTF) +
                        ((int)I.Prim - (int)PrimVal::FAdd));
      D.B = I.Srcs[0];
      D.C = I.Srcs[1];
      D.Site = I.Site;
      break;
    case PrimVal::FNeg:
      D.Op = (uint16_t)(TG ? DOp::FNegTG : DOp::FNegTF);
      D.B = I.Srcs[0];
      D.Site = I.Site;
      break;
    case PrimVal::FLt:
      D.Op = (uint16_t)(TG ? DOp::FLtTG : DOp::FLtTF);
      D.B = I.Srcs[0];
      D.C = I.Srcs[1];
      break;
    case PrimVal::FEq:
      D.Op = (uint16_t)(TG ? DOp::FEqTG : DOp::FEqTF);
      D.B = I.Srcs[0];
      D.C = I.Srcs[1];
      break;
    case PrimVal::IntToFloat:
      D.Op = (uint16_t)(TG ? DOp::I2FTG : DOp::I2FTF);
      D.B = I.Srcs[0];
      D.Site = I.Site;
      break;
    }
    Code.push_back(D);
  }

  void emitFused(std::vector<DInstr> &Code, const FusedSeq &Seq) {
    const Instr &I0 = F.Code[Seq.Start];
    DInstr D;
    D.NSteps = Seq.Len;
    switch (Seq.Pattern) {
    case FusePattern::ArithImm: {
      const Instr &I1 = F.Code[Seq.Start + 1];
      D.Op = (uint16_t)arithFamily(I1.Prim,
                                   TG ? DOp::AddImmTG : DOp::AddImmTF);
      D.A = I1.Dst;
      D.B = I1.Srcs[0];
      D.C = I0.Dst;
      D.Imm = encodeInt(I0.IntImm);
      D.Cls[0] = (uint8_t)OpClass::Load;
      D.Cls[1] = (uint8_t)OpClass::Prim;
      break;
    }
    case FusePattern::CmpImm: {
      const Instr &I1 = F.Code[Seq.Start + 1];
      D.Op = (uint16_t)cmpFamily(I1.Prim,
                                 TG ? DOp::CmpImmLtTG : DOp::CmpImmLtTF);
      D.A = I1.Dst;
      D.B = I1.Srcs[0];
      D.C = I0.Dst;
      D.Imm = encodeInt(I0.IntImm);
      D.Cls[0] = (uint8_t)OpClass::Load;
      D.Cls[1] = (uint8_t)OpClass::Prim;
      break;
    }
    case FusePattern::CmpBranch: {
      const Instr &I1 = F.Code[Seq.Start + 1];
      D.Op = (uint16_t)cmpFamily(I0.Prim,
                                 TG ? DOp::CmpBrLtTG : DOp::CmpBrLtTF);
      D.A = I0.Dst;
      D.B = I0.Srcs[0];
      D.C = I0.Srcs[1];
      D.D = target(I1.Label);
      D.Extra = target(I1.Label2);
      D.Cls[0] = (uint8_t)OpClass::Prim;
      D.Cls[1] = (uint8_t)OpClass::Branch;
      break;
    }
    case FusePattern::CmpImmBranch: {
      const Instr &I1 = F.Code[Seq.Start + 1];
      const Instr &I2 = F.Code[Seq.Start + 2];
      D.Op = (uint16_t)cmpFamily(I1.Prim,
                                 TG ? DOp::CmpImmBrLtTG : DOp::CmpImmBrLtTF);
      D.A = I1.Dst;
      D.B = I1.Srcs[0];
      D.C = I0.Dst;
      D.Imm = encodeInt(I0.IntImm);
      D.D = target(I2.Label);
      D.Extra = target(I2.Label2);
      D.Cls[0] = (uint8_t)OpClass::Load;
      D.Cls[1] = (uint8_t)OpClass::Prim;
      D.Cls[2] = (uint8_t)OpClass::Branch;
      break;
    }
    case FusePattern::MoveReturn: {
      // The Move's destination dies with the frame; returning the source
      // directly is observationally identical (no GC point in between).
      D.Op = (uint16_t)DOp::MoveRet;
      D.B = I0.Srcs[0];
      D.Cls[0] = (uint8_t)OpClass::Load;
      D.Cls[1] = (uint8_t)OpClass::Call;
      break;
    }
    case FusePattern::GetField2: {
      const Instr &I1 = F.Code[Seq.Start + 1];
      D.Op = (uint16_t)DOp::GetField2;
      D.A = I0.Dst;
      D.B = I0.Srcs[0];
      D.C = I0.FieldIdx;
      D.D = I1.Dst;
      D.Extra = (uint32_t)I1.Srcs[0] | ((uint32_t)I1.FieldIdx << 16);
      D.Cls[0] = (uint8_t)OpClass::HeapAccess;
      D.Cls[1] = (uint8_t)OpClass::HeapAccess;
      break;
    }
    }
    Code.push_back(D);
  }
};

} // namespace

DecodedProgram tfgc::decodeProgram(const IrProgram &P,
                                   const DecodeConfig &Cfg) {
  DecodedProgram Out;
  Out.Cfg = Cfg;
  Out.Fns.resize(P.Functions.size());
  for (size_t I = 0; I < P.Functions.size(); ++I) {
    FnDecoder Dec(P, P.Functions[I], Cfg, Out);
    Dec.run(Out.Fns[I]);
  }
  return Out;
}
