# Empty compiler generated dependencies file for tfgc_tasking.
# This may be replaced when dependencies are built.
