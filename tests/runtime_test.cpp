//===- tests/runtime_test.cpp - Heap, mark-sweep, support utilities ------===//

#include "runtime/GenHeap.h"
#include "runtime/Heap.h"
#include "runtime/MarkSweepHeap.h"
#include "runtime/Value.h"
#include "support/Arena.h"
#include "support/Diagnostics.h"
#include "support/Rng.h"
#include "support/Stats.h"

#include <gtest/gtest.h>

using namespace tfgc;

namespace {

TEST(Heap, AllocateUntilFull) {
  Heap H(1024); // 128 words
  size_t Allocated = 0;
  while (Word *P = H.tryAllocate(8)) {
    (void)P;
    Allocated += 8;
  }
  EXPECT_EQ(Allocated, 128u);
  EXPECT_EQ(H.freeWords(), 0u);
}

TEST(Heap, ForwardingRoundTrip) {
  Heap H(4096);
  Word *A = H.tryAllocate(3);
  A[0] = 11;
  A[1] = 22;
  A[2] = 33;
  H.beginCollection();
  EXPECT_FALSE(H.isForwarded(A));
  Word *New = H.allocateInToSpace(3);
  std::memcpy(New, A, 3 * sizeof(Word));
  H.setForwarded(A, (Word)(uintptr_t)New);
  EXPECT_TRUE(H.isForwarded(A));
  EXPECT_EQ(H.forwardee(A), (Word)(uintptr_t)New);
  H.endCollection();
  EXPECT_EQ(New[2], 33u);
  EXPECT_EQ(H.usedBytes(), 3 * sizeof(Word));
}

TEST(Heap, GrowthViaCollection) {
  Heap H(512);
  H.beginCollection(1024 / 8);
  H.endCollection();
  EXPECT_EQ(H.capacityBytes(), 1024u);
}

TEST(Heap, ContainsTracksCurrentSpace) {
  Heap H(1024);
  Word *A = H.tryAllocate(4);
  EXPECT_TRUE(H.contains((Word)(uintptr_t)A));
  EXPECT_FALSE(H.contains(0));
}

TEST(Heap, HugeRequestDoesNotOverflow) {
  // Regression: the old check computed `Alloc + Words > End`, forming a
  // past-the-end pointer (UB) that a sufficiently large request could
  // wrap around, turning an OOM into a bogus success.
  Heap H(1024);
  EXPECT_EQ(H.tryAllocate(SIZE_MAX), nullptr);
  EXPECT_EQ(H.tryAllocate(SIZE_MAX / sizeof(Word)), nullptr);
  EXPECT_NE(H.tryAllocate(8), nullptr);
}

TEST(MarkSweep, AllocateSweepReuse) {
  MarkSweepHeap H(1024);
  Word *A = H.tryAllocate(4);
  Word *B = H.tryAllocate(4);
  ASSERT_TRUE(A && B);
  H.beginMark();
  EXPECT_TRUE(H.tryMark(A));
  EXPECT_FALSE(H.tryMark(A)); // Second mark reports already-visited.
  size_t Reclaimed = H.sweep();
  EXPECT_EQ(Reclaimed, 4 * sizeof(Word)); // B freed.
  Word *C = H.tryAllocate(4);             // Reuses B's block.
  EXPECT_EQ(C, B);
}

TEST(MarkSweep, CanAllocateMatchesTryAllocate) {
  MarkSweepHeap H(64 * 8);
  while (H.canAllocate(8))
    ASSERT_NE(H.tryAllocate(8), nullptr);
  EXPECT_EQ(H.tryAllocate(8), nullptr);
}

TEST(MarkSweep, SegmentsGrow) {
  MarkSweepHeap H(64 * 8);
  size_t Cap = H.capacityBytes();
  H.addSegment();
  EXPECT_EQ(H.capacityBytes(), 2 * Cap);
  EXPECT_TRUE(H.canAllocate(8));
}

TEST(MarkSweep, LargeBlocksUseOverflowList) {
  MarkSweepHeap H(4096);
  Word *Big = H.tryAllocate(100); // > MaxBin
  ASSERT_TRUE(Big);
  H.beginMark();
  size_t Reclaimed = H.sweep();
  EXPECT_EQ(Reclaimed, 100 * sizeof(Word));
  Word *Again = H.tryAllocate(100);
  EXPECT_EQ(Again, Big);
}

TEST(MarkSweep, BinnedFreeListsReusePerSize) {
  MarkSweepHeap H(4096);
  Word *A4 = H.tryAllocate(4);
  Word *A8 = H.tryAllocate(8);
  Word *Keep = H.tryAllocate(4);
  ASSERT_TRUE(A4 && A8 && Keep);
  H.beginMark();
  EXPECT_TRUE(H.tryMark(Keep));
  EXPECT_EQ(H.sweep(), 12 * sizeof(Word));
  // Freed blocks return to their size bins; matching requests reuse the
  // exact blocks instead of bumping fresh space.
  EXPECT_EQ(H.tryAllocate(8), A8);
  EXPECT_EQ(H.tryAllocate(4), A4);
  EXPECT_EQ(H.numBlocks(), 3u);
}

TEST(MarkSweep, SegmentGrowthMidMark) {
  MarkSweepHeap H(64 * sizeof(Word));
  Word *A = H.tryAllocate(8);
  Word *B = H.tryAllocate(8);
  ASSERT_TRUE(A && B);
  H.beginMark();
  EXPECT_TRUE(H.tryMark(A));
  // Growing in the middle of a mark phase must keep existing mark bits
  // and bring the new segment up with a clean bitmap.
  H.addSegment();
  EXPECT_EQ(H.numSegments(), 2u);
  Word *C = H.tryAllocate(8); // Lands in the new segment.
  ASSERT_TRUE(C);
  EXPECT_TRUE(H.isMarked(A));
  EXPECT_FALSE(H.isMarked(C));
  EXPECT_TRUE(H.tryMark(C));
  EXPECT_EQ(H.sweep(), 8 * sizeof(Word)); // Only B collected.
  EXPECT_TRUE(H.contains((Word)(uintptr_t)A));
  EXPECT_TRUE(H.contains((Word)(uintptr_t)C));
}

TEST(MarkSweep, MarkBitsIdempotentAndClearedBySweep) {
  MarkSweepHeap H(1024);
  Word *A = H.tryAllocate(4);
  ASSERT_TRUE(A);
  H.beginMark();
  EXPECT_FALSE(H.isMarked(A));
  EXPECT_TRUE(H.tryMark(A));
  EXPECT_TRUE(H.isMarked(A));
  EXPECT_FALSE(H.tryMark(A)); // Re-mark keeps the bit, reports visited.
  EXPECT_TRUE(H.isMarked(A));
  EXPECT_EQ(H.sweep(), 0u); // A survives; bitmap is wiped for next cycle.
  EXPECT_FALSE(H.isMarked(A));
  H.beginMark();
  EXPECT_TRUE(H.tryMark(A)); // Second cycle behaves identically.
  EXPECT_EQ(H.sweep(), 0u);
}

TEST(MarkSweep, HugeRequestDoesNotOverflow) {
  MarkSweepHeap H(1024);
  EXPECT_FALSE(H.canAllocate(SIZE_MAX));
  EXPECT_EQ(H.tryAllocate(SIZE_MAX), nullptr);
  EXPECT_EQ(H.tryAllocate(SIZE_MAX / sizeof(Word)), nullptr);
  EXPECT_NE(H.tryAllocate(8), nullptr);
}

TEST(GenHeap, NurseryAllocationAndRegions) {
  GenHeap H(4096, 1024); // 512 tenured words, 128 nursery words
  EXPECT_EQ(H.nurseryCapacityWords(), 128u);
  Word *A = H.tryAllocate(8);
  ASSERT_NE(A, nullptr);
  EXPECT_TRUE(H.inNursery((Word)(uintptr_t)A));
  EXPECT_FALSE(H.inTenured((Word)(uintptr_t)A));
  EXPECT_TRUE(H.contains((Word)(uintptr_t)A));
  EXPECT_EQ(H.tryAllocate(SIZE_MAX), nullptr); // overflow-safe, like Heap
  size_t Allocated = 8;
  while (H.tryAllocate(8))
    Allocated += 8;
  EXPECT_EQ(Allocated, 128u);
}

TEST(GenHeap, MinorSurvivalAndPromotion) {
  GenHeap H(4096, 1024);
  Word *A = H.tryAllocate(4);
  A[0] = 7;
  H.beginMinor();
  EXPECT_FALSE(H.isForwarded(A));
  Word *Survivor = H.allocateInSurvivorSpace(4);
  std::memcpy(Survivor, A, 4 * sizeof(Word));
  H.setForwarded(A, (Word)(uintptr_t)Survivor);
  EXPECT_TRUE(H.isForwarded(A));
  EXPECT_EQ(H.forwardee(A), (Word)(uintptr_t)Survivor);
  H.endMinor();
  // After the flip the survivor copy is the live nursery object.
  EXPECT_TRUE(H.inNursery((Word)(uintptr_t)Survivor));
  EXPECT_EQ(H.nurseryUsedWords(), 4u);
  EXPECT_EQ(Survivor[0], 7u);

  // Promote it during the next minor: it moves to tenured.
  H.beginMinor();
  Word *Old = H.allocateInTenured(4);
  std::memcpy(Old, Survivor, 4 * sizeof(Word));
  H.setForwarded(Survivor, (Word)(uintptr_t)Old);
  H.endMinor();
  EXPECT_TRUE(H.inTenured((Word)(uintptr_t)Old));
  EXPECT_EQ(H.nurseryUsedWords(), 0u);
  EXPECT_EQ(H.tenuredUsedWords(), 4u);
}

TEST(GenHeap, MajorEvacuatesBothRegionsAndEmptiesNursery) {
  GenHeap H(4096, 1024);
  Word *Young = H.tryAllocate(4);
  Young[0] = 1;
  H.beginMinor();
  Word *Old = H.allocateInTenured(4);
  std::memcpy(Old, Young, 4 * sizeof(Word));
  H.setForwarded(Young, (Word)(uintptr_t)Old);
  H.endMinor();
  Word *Young2 = H.tryAllocate(6);
  Young2[0] = 2;

  H.beginMajor(256);
  Word *NewOld = H.allocateInToSpace(4);
  std::memcpy(NewOld, Old, 4 * sizeof(Word));
  H.setForwarded(Old, (Word)(uintptr_t)NewOld);
  Word *NewYoung = H.allocateInToSpace(6);
  std::memcpy(NewYoung, Young2, 6 * sizeof(Word));
  H.setForwarded(Young2, (Word)(uintptr_t)NewYoung);
  H.endMajor();

  EXPECT_EQ(H.nurseryUsedWords(), 0u);
  EXPECT_EQ(H.tenuredUsedWords(), 10u);
  EXPECT_EQ(H.tenuredCapacityWords(), 256u);
  EXPECT_TRUE(H.inTenured((Word)(uintptr_t)NewOld));
  EXPECT_TRUE(H.inTenured((Word)(uintptr_t)NewYoung));
  EXPECT_EQ(NewOld[0], 1u);
  EXPECT_EQ(NewYoung[0], 2u);
}

TEST(GenHeap, GrowNurseryDoubles) {
  GenHeap H(4096, 1024);
  EXPECT_EQ(H.nurseryCapacityWords(), 128u);
  H.growNursery(300);
  EXPECT_GE(H.nurseryCapacityWords(), 300u);
  EXPECT_EQ(H.nurseryUsedWords(), 0u);
  Word *P = H.tryAllocate(300);
  EXPECT_NE(P, nullptr);
}

TEST(Value, TagRoundTrip) {
  for (int64_t V : {0ll, 1ll, -1ll, 123456789ll, -987654321ll,
                    (1ll << 62) - 1, -(1ll << 62)}) {
    EXPECT_EQ(untagInt(tagInt(V)), V);
    EXPECT_TRUE(isTaggedImmediate(tagInt(V)));
  }
}

TEST(Value, TaggedComparisonIsOrderPreserving) {
  EXPECT_LT((int64_t)tagInt(-5), (int64_t)tagInt(3));
  EXPECT_LT((int64_t)tagInt(3), (int64_t)tagInt(4));
}

TEST(Value, Headers) {
  Word H = makeHeader(17, ObjKind::Raw);
  EXPECT_EQ(headerSize(H), 17u);
  EXPECT_EQ(headerKind(H), ObjKind::Raw);
}

TEST(Value, FloatBits) {
  for (double D : {0.0, 1.5, -2.25, 1e100}) {
    EXPECT_EQ(wordToFloat(floatToWord(D)), D);
  }
}

TEST(Arena, AlignmentAndReuse) {
  Arena A(64);
  void *P1 = A.allocate(1, 1);
  void *P16 = A.allocate(16, 16);
  EXPECT_EQ((uintptr_t)P16 % 16, 0u);
  (void)P1;
  size_t Before = A.bytesAllocated();
  A.allocate(1000, 8); // Forces a new block.
  EXPECT_GT(A.bytesAllocated(), Before);
  A.reset();
  EXPECT_EQ(A.bytesAllocated(), 0u);
}

TEST(Arena, MakeConstructs) {
  Arena A;
  struct Pod {
    int X;
    int Y;
  };
  Pod *P = A.make<Pod>(Pod{1, 2});
  EXPECT_EQ(P->X, 1);
  EXPECT_EQ(P->Y, 2);
}

TEST(Stats, Accumulation) {
  Stats S;
  S.add("a");
  S.add("a", 4);
  S.max("m", 10);
  S.max("m", 3);
  S.set("s", 7);
  EXPECT_EQ(S.get("a"), 5u);
  EXPECT_EQ(S.get("m"), 10u);
  EXPECT_EQ(S.get("s"), 7u);
  EXPECT_EQ(S.get("missing"), 0u);
  EXPECT_NE(S.render().find("a = 5"), std::string::npos);
}

TEST(Stats, StringShimSharesSlotsWithIds) {
  // Fixed names resolve to the exact slot the StatId overloads use, so
  // mixed-API code observes one counter, not two.
  Stats S;
  S.add(StatId::GcCollections, 3);
  S.add("gc.collections", 2);
  EXPECT_EQ(S.get(StatId::GcCollections), 5u);
  EXPECT_EQ(S.get("gc.collections"), 5u);
  S.max("vm.steps", 9);
  S.max(StatId::VmSteps, 4);
  EXPECT_EQ(S.get(StatId::VmSteps), 9u);
  S.set(StatId::HeapUsedBytes, 42);
  EXPECT_EQ(S.get("heap.used_bytes"), 42u);
  EXPECT_TRUE(S.has("heap.used_bytes"));
  EXPECT_FALSE(S.has(StatId::VmTagOps));
}

TEST(Stats, EveryFixedNameRoundTrips) {
  Stats S;
  for (size_t I = 0; I < Stats::NumFixed; ++I) {
    StatId Id = (StatId)I;
    std::string Name(Stats::name(Id));
    EXPECT_EQ(Stats::idForName(Name), Id) << Name;
    S.set(Name, I + 1);
    EXPECT_EQ(S.get(Id), I + 1) << Name;
  }
  EXPECT_EQ(Stats::idForName("no.such.counter"), StatId::NumIds);
}

TEST(Stats, RenderMergesFixedAndDynamicInNameOrder) {
  Stats S;
  S.add("aaa.dynamic", 1);        // Sorts before every fixed name.
  S.add(StatId::GcCollections, 2); // "gc.collections"
  S.add("gz.dynamic", 3);          // Between gc.* and heap.*.
  S.add(StatId::VmSteps, 4);       // "vm.steps"
  S.add("zz.dynamic", 5);          // After every fixed name.
  std::string R = S.render();
  size_t P0 = R.find("aaa.dynamic = 1");
  size_t P1 = R.find("gc.collections = 2");
  size_t P2 = R.find("gz.dynamic = 3");
  size_t P3 = R.find("vm.steps = 4");
  size_t P4 = R.find("zz.dynamic = 5");
  ASSERT_NE(P0, std::string::npos);
  ASSERT_NE(P4, std::string::npos);
  EXPECT_TRUE(P0 < P1 && P1 < P2 && P2 < P3 && P3 < P4);
  // Untouched counters do not render; an explicit zero does.
  EXPECT_EQ(R.find("gc.tg_nodes"), std::string::npos);
  S.set(StatId::GcTgNodes, 0);
  EXPECT_NE(S.render().find("gc.tg_nodes = 0"), std::string::npos);
}

TEST(Stats, DynamicNamesInterleaveTightlyWithFixedNames) {
  // The dynamic-name fallback must merge correctly even when dynamic keys
  // sort immediately adjacent to fixed names — the tightest case for the
  // two-finger merge in render(). The telemetry layer publishes exactly
  // such keys (gc.census_*, gc.phase_*) between fixed gc.* counters.
  Stats S;
  S.add(StatId::GcPauseNsP50, 10);     // fixed "gc.pause_ns_p50"
  S.add("gc.pause_ns_p50x", 11);       // dynamic, immediately after it
  S.add("gc.pause_ns_p5", 9);          // dynamic, prefix sorting before it
  S.add(StatId::GcPauseNsTotal, 12);   // fixed "gc.pause_ns_total"
  S.add("gc.census_data_objects", 7);  // dynamic, between fixed gc.* names
  S.add("gc.phase_root_scan_ns", 8);   // dynamic, between fixed gc.* names
  S.add(StatId::GcCollections, 1);     // fixed "gc.collections"
  S.add(StatId::GcPtrReversalSteps, 13); // fixed "gc.ptr_reversal_steps"

  // all() returns every counter once, fixed and dynamic alike.
  auto All = S.all();
  EXPECT_EQ(All.size(), 8u);
  EXPECT_EQ(All.at("gc.pause_ns_p50"), 10u);
  EXPECT_EQ(All.at("gc.pause_ns_p50x"), 11u);
  EXPECT_EQ(All.at("gc.pause_ns_p5"), 9u);
  EXPECT_EQ(All.at("gc.census_data_objects"), 7u);

  // render() emits them in one globally sorted sequence.
  std::string R = S.render();
  std::vector<std::string> Expected = {
      "gc.census_data_objects = 7", "gc.collections = 1",
      "gc.pause_ns_p5 = 9",         "gc.pause_ns_p50 = 10",
      "gc.pause_ns_p50x = 11",      "gc.pause_ns_total = 12",
      "gc.phase_root_scan_ns = 8",  "gc.ptr_reversal_steps = 13"};
  size_t Last = 0;
  for (const std::string &Line : Expected) {
    size_t P = R.find(Line);
    ASSERT_NE(P, std::string::npos) << Line << "\n" << R;
    EXPECT_GE(P, Last) << "out of order: " << Line << "\n" << R;
    Last = P;
  }
}

TEST(Stats, DynamicNameMatchingFixedNameSharesTheSlot) {
  // A dynamic-looking name that exactly equals a fixed name must resolve
  // to the fixed slot, never create a shadow dynamic counter.
  Stats S;
  S.add("gc.pause_ns_p90", 4);
  S.add(StatId::GcPauseNsP90, 2);
  EXPECT_EQ(S.get(StatId::GcPauseNsP90), 6u);
  auto All = S.all();
  EXPECT_EQ(All.size(), 1u);
  EXPECT_EQ(All.at("gc.pause_ns_p90"), 6u);
}

TEST(Stats, ClearResetsEverything) {
  Stats S;
  S.add(StatId::VmCalls, 7);
  S.add("custom.counter", 1);
  S.clear();
  EXPECT_EQ(S.get(StatId::VmCalls), 0u);
  EXPECT_FALSE(S.has(StatId::VmCalls));
  EXPECT_FALSE(S.has("custom.counter"));
  EXPECT_TRUE(S.render().empty());
}

TEST(Diagnostics, RenderAndCount) {
  DiagnosticEngine D;
  D.error(SourceLoc(3, 14), "bad thing");
  D.warning(SourceLoc(), "heads up");
  EXPECT_TRUE(D.hasErrors());
  EXPECT_EQ(D.errorCount(), 1u);
  std::string R = D.render();
  EXPECT_NE(R.find("error: 3:14: bad thing"), std::string::npos);
  EXPECT_NE(R.find("warning: heads up"), std::string::npos);
  D.clear();
  EXPECT_FALSE(D.hasErrors());
}

TEST(Rng, Deterministic) {
  Rng A(42), B(42);
  for (int I = 0; I < 100; ++I)
    EXPECT_EQ(A.next(), B.next());
  Rng C(43);
  EXPECT_NE(A.next(), C.next());
}

TEST(Rng, RangeBounds) {
  Rng R(7);
  for (int I = 0; I < 1000; ++I) {
    int64_t V = R.range(-3, 5);
    EXPECT_GE(V, -3);
    EXPECT_LE(V, 5);
  }
}

} // namespace
