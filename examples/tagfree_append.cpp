//===- examples/tagfree_append.cpp - The paper's section 2.4 example ------===//
///
/// Reproduces the paper's "interesting example": the append function whose
/// frame GC routines never trace anything. At the recursive call only the
/// integer head is needed later (no action for the collector), and at the
/// cons call nothing is needed at all — so every gc_word of append points
/// at the shared no_trace routine, and "garbage collection never needs to
/// trace the elements of an append activation record".
///
//===----------------------------------------------------------------------===//

#include "driver/Compiler.h"

#include <cstdio>

using namespace tfgc;

int main() {
  const char *Source = R"(
    fun append (xs : int list) (ys : int list) : int list =
      case xs of
        Nil => ys
      | Cons(x, rest) => x :: append rest ys;

    fun build (n : int) : int list =
      if n = 0 then [] else n :: build (n - 1);

    fun sum (xs : int list) : int =
      case xs of Nil => 0 | Cons(x, r) => x + sum r;

    sum (append (build 400) (build 400))
  )";

  Compiler C;
  std::string Error;
  auto P = C.compile(Source, &Error);
  if (!P) {
    std::fprintf(stderr, "%s", Error.c_str());
    return 1;
  }

  FuncId Append = findFunction(P->Prog, "append");
  std::printf("append's call sites and their frame GC routines:\n");
  for (const CallSiteInfo &S : P->Prog.Sites) {
    if (S.Caller != Append)
      continue;
    const char *Kind = S.Kind == SiteKind::Direct     ? "call"
                       : S.Kind == SiteKind::Indirect ? "call.ind"
                                                      : "alloc";
    const FrameRoutine &FR = P->Compiled.siteRoutine(S.Id);
    std::printf(
        "  site %-3u %-9s gc_word@%-4u routine=%s  traced slots: %zu\n",
        S.Id, Kind, S.CodeAddr + CodeImage::GcWordOffset,
        FR.isNoTrace() ? "no_trace" : "frame_gc", FR.Slots.size());
  }
  std::printf(
      "\nThe paper: \"garbage collection never needs to trace the elements "
      "of an append\nactivation record!\" — the recursive call is "
      "no_trace. The cons allocation's one\ntraced slot is int_cons's own "
      "parameter (the freshly appended tail), which the\npaper has "
      "int_cons trace for itself; this implementation charges it to the\n"
      "caller's record at the same site.\n\n");

  // Prove it dynamically: collect at every allocation while a deep stack
  // of append frames is live.
  Stats St;
  auto Col = P->makeCollector(GcStrategy::CompiledTagFree,
                              GcAlgorithm::Copying, 1 << 13, St, &Error);
  VmOptions VO = defaultVmOptions(GcStrategy::CompiledTagFree);
  Vm M(P->Prog, P->Image, *P->Types, *Col, VO);
  RunResult R = M.run();
  if (!R.Ok) {
    std::fprintf(stderr, "%s\n", R.Error.c_str());
    return 1;
  }
  std::printf("result: %s (expected %d)\n", R.Value.c_str(),
              2 * (400 * 401 / 2));
  std::printf("collections: %llu, frames traced: %llu, "
              "slots traced in total: %llu\n",
              (unsigned long long)St.get(StatId::GcCollections),
              (unsigned long long)St.get(StatId::GcFramesTraced),
              (unsigned long long)St.get(StatId::GcSlotsTraced));
  std::printf("\nThousands of append frames were on the stack during "
              "collections, yet the\nslots-traced count stays tiny: only "
              "build/sum/main frames contribute.\n");
  return 0;
}
