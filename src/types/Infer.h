//===- types/Infer.h - Hindley-Milner type inference ------------*- C++ -*-===//
///
/// \file
/// Algorithm-W style inference with Rémy levels. Only `fun` declarations
/// generalize (let-polymorphism); `val` bindings and lambdas stay
/// monomorphic. This keeps every VM stack slot's type either ground or
/// expressed over the enclosing function's type parameters — exactly the
/// shape the paper's tag-free collector consumes.
///
//===----------------------------------------------------------------------===//

#ifndef TFGC_TYPES_INFER_H
#define TFGC_TYPES_INFER_H

#include "frontend/Ast.h"
#include "support/Diagnostics.h"
#include "types/Type.h"

#include <optional>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

namespace tfgc {

/// Resolution of a constructor use (expression or pattern) to its datatype,
/// constructor index and the per-use instantiation of the datatype's
/// parameters.
struct ResolvedCtor {
  DatatypeInfo *Info = nullptr;
  unsigned Index = 0;
  std::vector<Type *> TypeArgs;
};

/// Side tables filled by the checker and consumed by lowering.
struct SemaInfo {
  std::unordered_map<const void *, ResolvedCtor> CtorRefs;
  std::unordered_map<const FunBind *, TypeScheme> FunSchemes;
};

class TypeChecker {
public:
  TypeChecker(TypeContext &Ctx, DiagnosticEngine &Diags,
              bool RequireMonomorphic = false);

  /// Type checks \p P, annotating Expr::Ty and Pattern::Ty in place.
  /// Returns the side tables, or nullopt after reporting errors.
  std::optional<SemaInfo> check(Program &P);

private:
  TypeContext &Ctx;
  DiagnosticEngine &Diags;
  bool RequireMonomorphic;
  SemaInfo Info;

  std::vector<std::unordered_map<std::string, TypeScheme>> Scopes;
  std::vector<std::unordered_map<std::string, Type *>> TyVarScopes;
  int Level = 0;

  void pushScope() { Scopes.emplace_back(); }
  void popScope() { Scopes.pop_back(); }
  void bindValue(const std::string &Name, TypeScheme S);
  const TypeScheme *lookupValue(const std::string &Name) const;

  Type *convertTypeAst(const TypeAst *T);

  void checkDecl(Decl *D);
  void checkDatatypeDecl(Decl *D);
  void checkFunDecl(Decl *D);
  void checkValDecl(Decl *D);

  Type *inferExpr(Expr *E);
  Type *inferPrim(PrimExpr *E);
  /// Types \p P against \p Expected, binding its variables monomorphically
  /// in the current scope. \p Seen guards against duplicate names.
  void bindPattern(Pattern *P, Type *Expected,
                   std::unordered_set<std::string> &Seen);

  void unifyOrError(Type *A, Type *B, SourceLoc Loc, const char *Context);

  /// Warns when a case over a datatype/bool/int leaves values unmatched
  /// (shallow analysis; a runtime miss aborts with "pattern match
  /// failure").
  void checkExhaustiveness(const CaseExpr *C, Type *ScrutTy);

  /// Post-pass: bind leftover free vars to unit so downstream metadata is
  /// total.
  void finalizeExpr(Expr *E);
  void finalizePattern(Pattern *P);
  void finalizeDecl(Decl *D);
};

} // namespace tfgc

#endif // TFGC_TYPES_INFER_H
