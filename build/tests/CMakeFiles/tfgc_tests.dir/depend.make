# Empty dependencies file for tfgc_tests.
# This may be replaced when dependencies are built.
