//===- support/BuildInfo.h - Build provenance -------------------*- C++ -*-===//
///
/// \file
/// Build provenance baked in at CMake configure time: the git revision,
/// the dispatch mode the build supports (TFGC_THREADED_DISPATCH), the
/// sanitizer leg (TFGC_SANITIZE), and the build type. Published as the
/// `tfgc_build_info` gauge in every /metrics exposition and as the
/// `"build"` block in --stats-json, so any saved artifact names the
/// binary that produced it.
///
//===----------------------------------------------------------------------===//

#ifndef TFGC_SUPPORT_BUILDINFO_H
#define TFGC_SUPPORT_BUILDINFO_H

namespace tfgc {

struct BuildInfo {
  const char *GitSha;    ///< `git rev-parse --short=12 HEAD`, or "unknown".
  const char *Dispatch;  ///< "threaded" or "switch" (build-time capability).
  const char *Sanitizer; ///< "none", "thread", "address", or "undefined".
  const char *BuildType; ///< CMAKE_BUILD_TYPE.
};

/// The provenance of this binary (static storage; always valid).
const BuildInfo &buildInfo();

} // namespace tfgc

#endif // TFGC_SUPPORT_BUILDINFO_H
