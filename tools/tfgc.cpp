//===- tools/tfgc.cpp - Command-line driver -------------------------------===//
///
/// Compiles and runs a MiniML program under a selectable GC strategy.
///
///   tfgc [options] file.mml        run a program
///   tfgc [options] -e 'expr'       run inline source
///
/// The options are defined in one table in src/driver/Cli.cpp — run
/// `tfgc --help` for the full list; highlights:
///
///   --strategy=S       tagged | compiled (default) | interpreted | appel
///   --algo=A           copying (default) | marksweep | generational
///   --heap=BYTES       initial heap size (default 1 MiB)
///   --verify           re-trace after every collection; exit 3 on
///                      violations
///   --gc-log / --trace-out=FILE / --stats-json=FILE
///                      collection telemetry (log lines, Chrome trace,
///                      counters+histograms JSON)
///   --heap-profile     allocation-site + typed-heap profiling (tag-free:
///                      attribution without per-object headers)
///   --heap-snapshot=F  write the last collection's typed snapshot as
///                      JSON (render with tools/heap_report.py)
///   --retainers=N      retained-size diagnostics: top-N dominators with
///                      a sample root path
///
/// Exit codes: 0 success, 1 compile/runtime error, 2 usage or I/O error,
/// 3 verify violations. Diagnostic files are flushed even on abnormal
/// exit.
///
//===----------------------------------------------------------------------===//

#include "driver/Cli.h"

#include <cstdio>

using namespace tfgc;

int main(int argc, char **argv) {
  std::vector<std::string> Args(argv + 1, argv + argc);
  CliOptions O;
  std::string Err;
  bool HelpOnly = false;
  if (!parseCli(Args, O, Err, HelpOnly)) {
    std::fprintf(stderr, "%s\n%s", Err.c_str(), usageText().c_str());
    return 2;
  }
  if (HelpOnly) {
    std::fputs(usageText().c_str(), stdout);
    return 0;
  }
  return runTfgc(O);
}
