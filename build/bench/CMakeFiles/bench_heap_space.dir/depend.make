# Empty dependencies file for bench_heap_space.
# This may be replaced when dependencies are built.
