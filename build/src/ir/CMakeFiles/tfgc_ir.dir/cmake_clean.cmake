file(REMOVE_RECURSE
  "CMakeFiles/tfgc_ir.dir/Ir.cpp.o"
  "CMakeFiles/tfgc_ir.dir/Ir.cpp.o.d"
  "CMakeFiles/tfgc_ir.dir/Lower.cpp.o"
  "CMakeFiles/tfgc_ir.dir/Lower.cpp.o.d"
  "CMakeFiles/tfgc_ir.dir/Monomorphise.cpp.o"
  "CMakeFiles/tfgc_ir.dir/Monomorphise.cpp.o.d"
  "CMakeFiles/tfgc_ir.dir/Verify.cpp.o"
  "CMakeFiles/tfgc_ir.dir/Verify.cpp.o.d"
  "libtfgc_ir.a"
  "libtfgc_ir.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tfgc_ir.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
