//===- bench/bench_monitor.cpp - E12: mutator observability cost ---------===//
///
/// What does watching the mutator cost the mutator? The monitor's hot
/// path is one fuel decrement per VM step when disabled and one sample
/// every N steps when enabled, so the claims to verify are:
///
///   off     monitor not attached: the dispatch loop pays one decrement
///           and a never-taken branch per step. Must be within noise
///           (<= 1%) of the seed build.
///   sample  monitor attached at the default period (512 steps): flat +
///           caller profile, MMU tracking, per-task accounting. <= 5%.
///   stream  sample + JSONL heartbeats to a null stream every 10 ms —
///           prices the serialization, not the disk.
///
/// The second table is the observability payoff: the MMU/pause profile of
/// generationalChurn under all three collection algorithms, measured by
/// the monitor itself — few-big-pauses (copying/marksweep) versus
/// many-tiny-pauses (generational with the bench's deliberately small
/// nursery) become a quantified trade-off instead of folklore.
///
/// Reports wall-clock medians over interleaved runs; the
/// google-benchmark entries feed BENCH_monitor.json for the trajectory.
///
/// Acceptance line: sample/off ratio <= 1.05 on both workloads.
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include <algorithm>
#include <array>
#include <chrono>
#include <sstream>

using namespace tfgc;
using namespace tfgc::bench;
namespace wl = tfgc::workloads;

namespace {

constexpr size_t HeapBytes = 1 << 16;
constexpr size_t GenHeapBytes = 1 << 20;
constexpr size_t GenNurseryBytes = 1 << 13;

enum MonitorMode { Off = 0, Sample = 1, Stream = 2 };

const char *modeName(MonitorMode M) {
  return M == Off ? "off" : M == Sample ? "sample" : "stream";
}

Monitor::Options monOpts(MonitorMode M) {
  Monitor::Options O; // default 512-step sample period
  if (M == Stream)
    O.HeartbeatPeriodMs = 10;
  return O;
}

/// One compile-free run under \p Mode; returns stats, optionally the wall
/// time and the monitor state (for the MMU table).
Stats monitoredRun(CompiledProgram &P, GcStrategy S, GcAlgorithm A,
                   size_t Heap, size_t Nursery, MonitorMode Mode,
                   uint64_t *WallNs = nullptr, Monitor *MonOut = nullptr) {
  Stats St;
  std::string Err;
  auto Col = P.makeCollector(S, A, Heap, St, &Err, Nursery);
  if (!Col) {
    std::fprintf(stderr, "makeCollector failed: %s\n", Err.c_str());
    std::abort();
  }
  Monitor Local(monOpts(Mode));
  Monitor &Mon = MonOut ? *MonOut : Local;
  std::ostringstream Sink;
  if (Mode != Off) {
    Mon.setStats(&St);
    attachMonitor(P, *Col, Mon);
    if (Mode == Stream)
      Mon.setStream(&Sink);
  }
  Vm M(P.Prog, P.Image, *P.Types, *Col, defaultVmOptions(S));
  auto T0 = std::chrono::steady_clock::now();
  RunResult R = M.run();
  auto T1 = std::chrono::steady_clock::now();
  if (!R.Ok) {
    std::fprintf(stderr, "bench run failed: %s\n", R.Error.c_str());
    std::abort();
  }
  if (Mode == Stream)
    Mon.finish();
  if (WallNs)
    *WallNs =
        (uint64_t)std::chrono::duration_cast<std::chrono::nanoseconds>(T1 -
                                                                       T0)
            .count();
  // Counter runs (the ones whose monitor outlives the run) feed the JSON
  // trajectory; timing reps stay out of table_runs.
  if (MonOut)
    if (JsonSink *Sink = JsonSink::active())
      Sink->record(
          (std::string(gcStrategyName(S)) + "+" + modeName(Mode)).c_str(),
          A, Heap, St, Nursery);
  return St;
}

/// Samples all three modes round-robin (after one untimed warmup) so
/// frequency and load drift hit every mode equally.
std::array<uint64_t, 3> medianWallNs(CompiledProgram &P, GcStrategy S,
                                     GcAlgorithm A, size_t Heap,
                                     size_t Nursery, int Reps = 9) {
  monitoredRun(P, S, A, Heap, Nursery, Off);
  std::array<std::vector<uint64_t>, 3> Ns;
  for (int I = 0; I < Reps; ++I)
    for (MonitorMode Mode : {Off, Sample, Stream}) {
      uint64_t W = 0;
      monitoredRun(P, S, A, Heap, Nursery, Mode, &W);
      Ns[Mode].push_back(W);
    }
  std::array<uint64_t, 3> Med;
  for (int M = 0; M < 3; ++M) {
    std::sort(Ns[M].begin(), Ns[M].end());
    Med[M] = Ns[M][Ns[M].size() / 2];
  }
  return Med;
}

void reportCost() {
  struct Workload {
    const char *Name;
    std::string Src;
    GcAlgorithm Algo;
    size_t Heap, Nursery;
  } Workloads[] = {
      {"arith", wl::arithKernel(200000), GcAlgorithm::Copying, HeapBytes, 0},
      {"listChurn", wl::listChurn(200, 64), GcAlgorithm::Copying, HeapBytes,
       0},
  };

  tableHeader("E12: monitor cost (compiled tag-free)",
              "wall-clock medians over 9 interleaved runs; 'ratio' is vs "
              "the monitor off; 'sample' profiles every 512 steps, "
              "'stream' adds 10 ms JSONL heartbeats to a null sink",
              {"workload", "mode", "median ms", "ratio", "samples",
               "heartbeats"});
  bool Pass = true;
  for (Workload &W : Workloads) {
    jsonWorkload(W.Name);
    auto P = compileOrDie(W.Src);
    std::array<uint64_t, 3> Med = medianWallNs(
        *P, GcStrategy::CompiledTagFree, W.Algo, W.Heap, W.Nursery);
    for (MonitorMode Mode : {Off, Sample, Stream}) {
      double Ratio = Med[Off] ? (double)Med[Mode] / (double)Med[Off] : 0.0;
      Monitor Mon(monOpts(Mode));
      monitoredRun(*P, GcStrategy::CompiledTagFree, W.Algo, W.Heap,
                   W.Nursery, Mode, nullptr, &Mon);
      tableCell(W.Name);
      tableCell(modeName(Mode));
      tableCell((double)Med[Mode] / 1e6);
      tableCell(Ratio);
      tableCell(Mon.samples());
      tableCell(Mon.heartbeatsEmitted());
      tableEnd();
      if (Mode == Sample && Ratio > 1.05)
        Pass = false;
    }
  }
  std::printf(
      "\n'off' prices the dispatch loop's fuel decrement (the seed build "
      "lacks even\nthat — acceptance there is the <= 1%% archive diff); "
      "sample/off <= 1.05 on\nboth workloads: %s\n",
      Pass ? "PASS"
           : "not met this run — sampling cost is one function-table "
             "lookup and four\ncounter bumps per 512 steps, so misses "
             "here are machine noise; re-run\nbefore reading anything "
             "into the ratio");
}

void reportMmu() {
  // The observability payoff: the monitor prices each algorithm's pause
  // behaviour on the same minor-dominated workload. MMU(w) is the worst
  // fraction of any w-window the mutator kept.
  auto P = compileOrDie(wl::generationalChurn(20000, 30, 4000));
  tableHeader("E12: MMU on generationalChurn (compiled tag-free)",
              "monitor-measured minimum mutator utilization; higher is "
              "better; 'mut frac' is overall mutator share of wall-clock",
              {"algo", "collections", "mut frac", "MMU 1ms", "MMU 10ms",
               "MMU 100ms"});
  jsonWorkload("generationalChurn");
  const GcAlgorithm Algos[] = {GcAlgorithm::Copying, GcAlgorithm::MarkSweep,
                               GcAlgorithm::Generational};
  for (GcAlgorithm A : Algos) {
    size_t Nursery = A == GcAlgorithm::Generational ? GenNurseryBytes : 0;
    Monitor Mon;
    Stats St = monitoredRun(*P, GcStrategy::CompiledTagFree, A, GenHeapBytes,
                            Nursery, Sample, nullptr, &Mon);
    tableCell(gcAlgorithmName(A));
    tableCell(St.get(StatId::GcCollections));
    tableCell(Mon.mutatorFraction());
    tableCell(Mon.mmu(1'000'000));
    tableCell(Mon.mmu(10'000'000));
    tableCell(Mon.mmu(100'000'000));
    tableEnd();
  }
  std::printf(
      "\nExpected shape: copying and marksweep take a handful of big "
      "pauses, so most\nsmall windows are untouched and MMU climbs "
      "quickly with the window. With the\n8 KB bench nursery this "
      "workload is minor-collection-bound: generational\nspends ~half "
      "its wall-clock in hundreds of tiny pauses and its small-window\n"
      "MMU collapses — the table makes that trade-off measurable instead "
      "of assumed.\n");
}

std::unique_ptr<CompiledProgram> &arithProg() {
  static auto P = compileOrDie(wl::arithKernel(200000));
  return P;
}
std::unique_ptr<CompiledProgram> &churnProg() {
  static auto P = compileOrDie(wl::listChurn(200, 64));
  return P;
}

void BM_Arith(benchmark::State &State, MonitorMode Mode) {
  for (auto _ : State) {
    uint64_t W = 0;
    Stats St = monitoredRun(*arithProg(), GcStrategy::CompiledTagFree,
                            GcAlgorithm::Copying, HeapBytes, 0, Mode, &W);
    State.counters["steps"] = (double)St.get(StatId::VmSteps);
    benchmark::DoNotOptimize(W);
  }
}

void BM_ListChurn(benchmark::State &State, MonitorMode Mode) {
  for (auto _ : State) {
    uint64_t W = 0;
    Stats St = monitoredRun(*churnProg(), GcStrategy::CompiledTagFree,
                            GcAlgorithm::Copying, HeapBytes, 0, Mode, &W);
    State.counters["collections"] = (double)St.get(StatId::GcCollections);
    benchmark::DoNotOptimize(W);
  }
}

BENCHMARK_CAPTURE(BM_Arith, off, Off);
BENCHMARK_CAPTURE(BM_Arith, sample, Sample);
BENCHMARK_CAPTURE(BM_Arith, stream, Stream);
BENCHMARK_CAPTURE(BM_ListChurn, off, Off);
BENCHMARK_CAPTURE(BM_ListChurn, sample, Sample);
BENCHMARK_CAPTURE(BM_ListChurn, stream, Stream);

} // namespace

int main(int argc, char **argv) {
  JsonSink Sink("monitor", argc, argv);
  reportCost();
  reportMmu();
  std::printf(
      "\nExpected shape: 'sample' tracks 'off' within noise — a sample is "
      "a handful\nof counter bumps amortized over 512 steps — and "
      "'stream' pays only when a\nheartbeat period elapses. The MMU table "
      "is the feature: pause structure,\nmeasured from the mutator's "
      "side.\n\n");
  benchmark::Initialize(&argc, argv);
  Sink.runBenchmarksAndWrite();
  return 0;
}
