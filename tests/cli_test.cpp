//===- tests/cli_test.cpp - tfgc command-line driver tests ----------------===//
///
/// Exercises the CLI as a library (driver/Cli.h): the flag table vs usage
/// text (a flag cannot be parsed without being documented), option
/// parsing including implied flags, and runTfgc() end-to-end behavior —
/// exit codes, and the guarantee that diagnostic artifacts (trace, stats
/// JSON, heap snapshot) land on disk even when the run fails.
///
//===----------------------------------------------------------------------===//

#include "TestUtil.h"
#include "driver/Cli.h"
#include "workloads/Programs.h"

#include <cstdio>
#include <fstream>
#include <sstream>

using namespace tfgc;
using namespace tfgc::test;
namespace wl = tfgc::workloads;

namespace {

bool parseOk(const std::vector<std::string> &Args, CliOptions &O) {
  std::string Err;
  bool HelpOnly = false;
  bool Ok = parseCli(Args, O, Err, HelpOnly);
  EXPECT_TRUE(Ok) << Err;
  EXPECT_FALSE(HelpOnly);
  return Ok;
}

std::string tmpPath(const char *Name) {
  return ::testing::TempDir() + "tfgc_cli_test_" + Name;
}

std::string slurp(const std::string &Path) {
  std::ifstream In(Path);
  std::ostringstream OS;
  OS << In.rdbuf();
  return OS.str();
}

TEST(Cli, EveryParsedFlagIsDocumented) {
  // The parser walks cliFlags() and the usage text is rendered from it,
  // so this holds by construction — the test pins the contract so a
  // future hand-rolled parse branch cannot silently bypass the table.
  std::string Usage = usageText();
  ASSERT_FALSE(cliFlags().empty());
  for (const CliFlag &F : cliFlags()) {
    EXPECT_NE(Usage.find(F.Name), std::string::npos)
        << "flag " << F.Name << " missing from usage text";
    ASSERT_NE(F.Help, nullptr);
    EXPECT_NE(Usage.find(F.Help), std::string::npos)
        << "help for " << F.Name << " missing from usage text";
  }
}

TEST(Cli, ParsesRepresentativeCommandLine) {
  CliOptions O;
  ASSERT_TRUE(parseOk({"--strategy=tagged", "--algo=generational",
                       "--heap=65536", "--nursery-bytes=4096", "--stress",
                       "--verify", "--stats", "-e", "1 + 2"},
                      O));
  EXPECT_EQ(O.Strategy, GcStrategy::Tagged);
  EXPECT_EQ(O.Algo, GcAlgorithm::Generational);
  EXPECT_EQ(O.HeapBytes, 65536u);
  EXPECT_EQ(O.NurseryBytes, 4096u);
  EXPECT_TRUE(O.Stress);
  EXPECT_TRUE(O.Verify);
  EXPECT_TRUE(O.ShowStats);
  EXPECT_TRUE(O.HaveSource);
  EXPECT_EQ(O.Source, "1 + 2");
  EXPECT_FALSE(O.HeapProfile);
}

TEST(Cli, SnapshotAndRetainersImplyHeapProfile) {
  CliOptions O;
  ASSERT_TRUE(parseOk({"--heap-snapshot=/tmp/s.json", "-e", "1"}, O));
  EXPECT_TRUE(O.HeapProfile);
  EXPECT_EQ(O.HeapSnapshotPath, "/tmp/s.json");

  CliOptions O2;
  ASSERT_TRUE(parseOk({"--retainers=7", "-e", "1"}, O2));
  EXPECT_TRUE(O2.HeapProfile);
  EXPECT_EQ(O2.Retainers, 7u);
}

TEST(Cli, RejectsUnknownFlagAndMissingValue) {
  CliOptions O;
  std::string Err;
  bool HelpOnly = false;
  EXPECT_FALSE(parseCli({"--bogus"}, O, Err, HelpOnly));
  EXPECT_NE(Err.find("--bogus"), std::string::npos) << Err;

  Err.clear();
  EXPECT_FALSE(parseCli({"-e"}, O, Err, HelpOnly));
  EXPECT_FALSE(Err.empty());
}

TEST(Cli, HelpRequestsUsage) {
  CliOptions O;
  std::string Err;
  bool HelpOnly = false;
  EXPECT_TRUE(parseCli({"--help"}, O, Err, HelpOnly));
  EXPECT_TRUE(HelpOnly);
}

TEST(Cli, DispatchAndFastPathFlagsParse) {
  CliOptions O;
  ASSERT_TRUE(parseOk({"--dispatch=switch", "--no-fuse", "--float-tag=box",
                       "--no-tailcall", "-e", "1"},
                      O));
  EXPECT_EQ(O.Dispatch, DispatchMode::Switch);
  EXPECT_FALSE(O.Fuse);
  EXPECT_FALSE(O.FloatSelfTag);
  EXPECT_FALSE(O.TailCalls);

  // Defaults: auto dispatch, fusion, self-tagging and tail calls on.
  CliOptions O2;
  ASSERT_TRUE(parseOk({"-e", "1"}, O2));
  EXPECT_EQ(O2.Dispatch, DispatchMode::Auto);
  EXPECT_TRUE(O2.Fuse);
  EXPECT_TRUE(O2.FloatSelfTag);
  EXPECT_TRUE(O2.TailCalls);

  // Bad values are usage errors naming the valid spellings.
  std::string Err;
  bool HelpOnly = false;
  CliOptions O3;
  EXPECT_FALSE(parseCli({"--dispatch=goto", "-e", "1"}, O3, Err, HelpOnly));
  EXPECT_NE(Err.find("threaded | switch"), std::string::npos) << Err;
  CliOptions O4;
  EXPECT_FALSE(parseCli({"--float-tag=nan", "-e", "1"}, O4, Err, HelpOnly));
  EXPECT_NE(Err.find("self | box"), std::string::npos) << Err;
}

TEST(Cli, ExplicitThreadedDispatchChecksAvailability) {
  CliOptions O;
  std::string Err;
  bool HelpOnly = false;
  bool Ok = parseCli({"--dispatch=threaded", "-e", "1"}, O, Err, HelpOnly);
  if (Vm::threadedDispatchAvailable()) {
    EXPECT_TRUE(Ok) << Err;
    EXPECT_EQ(O.Dispatch, DispatchMode::Threaded);
  } else {
    EXPECT_FALSE(Ok);
    EXPECT_NE(Err.find("threaded"), std::string::npos) << Err;
  }
}

TEST(Cli, DispatchConfigurationsAgreeEndToEnd) {
  // The same program through the CLI under every user-reachable fast-path
  // configuration exits 0 — counter equality is pinned by the dispatch
  // test suite; this pins the flag plumbing into runTfgc.
  for (const char *Flag : {"--dispatch=switch", "--no-fuse",
                           "--float-tag=box", "--no-tailcall"}) {
    CliOptions O;
    ASSERT_TRUE(parseOk({Flag, "--strategy=tagged", "--verify", "--stress",
                         "--heap=16384", "-e", wl::floatKernel(12, 4)},
                        O));
    EXPECT_EQ(runTfgc(O), 0) << Flag;
  }
}

TEST(Cli, ExitCodeZeroOnSuccess) {
  CliOptions O;
  ASSERT_TRUE(parseOk({"-e", "let val x = 20 in x + 22 end"}, O));
  EXPECT_EQ(runTfgc(O), 0);
}

TEST(Cli, ExitCodeOneOnCompileError) {
  CliOptions O;
  ASSERT_TRUE(parseOk({"-e", "let val x = in x end"}, O));
  EXPECT_EQ(runTfgc(O), 1);
}

TEST(Cli, VerifyViolationExitsThreeAndStillFlushesArtifacts) {
  // The satellite guarantee: a failing verify run must not lose its
  // diagnostics. Force violations with the injection hook and require the
  // trace, stats JSON, and heap snapshot to be complete on disk even
  // though the process exits non-zero.
  std::string Trace = tmpPath("trace.json");
  std::string StatsJson = tmpPath("stats.json");
  std::string Snap = tmpPath("snap.json");
  std::remove(Trace.c_str());
  std::remove(StatsJson.c_str());
  std::remove(Snap.c_str());

  CliOptions O;
  ASSERT_TRUE(parseOk({"--stress", "--heap=16384", "--verify",
                       "--inject-verify-violation",
                       "--trace-out=" + Trace, "--stats-json=" + StatsJson,
                       "--heap-snapshot=" + Snap, "-e",
                       wl::listChurn(20, 3)},
                      O));
  EXPECT_EQ(runTfgc(O), 3);

  std::string TraceDoc = slurp(Trace);
  EXPECT_NE(TraceDoc.find("traceEvents"), std::string::npos) << Trace;
  std::string StatsDoc = slurp(StatsJson);
  EXPECT_NE(StatsDoc.find("gc.collections"), std::string::npos)
      << StatsJson;
  EXPECT_NE(StatsDoc.find("gc.verify_violations"), std::string::npos)
      << StatsJson;
  std::string SnapDoc = slurp(Snap);
  EXPECT_NE(SnapDoc.find("tfgc-heap-profile"), std::string::npos) << Snap;
  EXPECT_NE(SnapDoc.find("\"valid\": true"), std::string::npos) << Snap;

  std::remove(Trace.c_str());
  std::remove(StatsJson.c_str());
  std::remove(Snap.c_str());
}

TEST(Cli, MonitorFlagsParseAndImplyMonitor) {
  CliOptions O;
  ASSERT_TRUE(parseOk({"--monitor-out=/tmp/m.jsonl", "--monitor-period-ms=5",
                       "--monitor-sample-steps=256", "-e", "1"},
                      O));
  EXPECT_TRUE(O.Monitor);
  EXPECT_EQ(O.MonitorOutPath, "/tmp/m.jsonl");
  EXPECT_EQ(O.MonitorPeriodMs, 5u);
  EXPECT_EQ(O.MonitorSampleSteps, 256u);

  // --monitor alone turns on in-process monitoring without a stream.
  CliOptions O2;
  ASSERT_TRUE(parseOk({"--monitor", "-e", "1"}, O2));
  EXPECT_TRUE(O2.Monitor);
  EXPECT_TRUE(O2.MonitorOutPath.empty());
}

TEST(Cli, MonitorPeriodWithoutOutIsUsageError) {
  // A heartbeat period with nowhere to stream is a contradiction the
  // parser rejects; tools/tfgc.cpp maps that to exit code 2.
  CliOptions O;
  std::string Err;
  bool HelpOnly = false;
  EXPECT_FALSE(parseCli({"--monitor-period-ms=5", "-e", "1"}, O, Err,
                        HelpOnly));
  EXPECT_NE(Err.find("--monitor-out"), std::string::npos) << Err;
}

TEST(Cli, MonitorRunEmitsCheckableStreamAndStats) {
  std::string Mon = tmpPath("mon.jsonl");
  std::string StatsJson = tmpPath("mon_stats.json");
  std::remove(Mon.c_str());
  std::remove(StatsJson.c_str());

  CliOptions O;
  ASSERT_TRUE(parseOk({"--heap=32768", "--monitor-out=" + Mon,
                       "--monitor-period-ms=1", "--monitor-sample-steps=64",
                       "--stats-json=" + StatsJson, "-e",
                       wl::listChurn(40, 8)},
                      O));
  EXPECT_EQ(runTfgc(O), 0);

  std::string Doc = slurp(Mon);
  EXPECT_NE(Doc.find("\"tool\": \"tfgc-monitor\""), std::string::npos) << Mon;
  EXPECT_NE(Doc.find("\"type\": \"summary\""), std::string::npos) << Mon;
  // Every line of the stream is syntactically valid JSON.
  std::istringstream In(Doc);
  std::string Line;
  while (std::getline(In, Line))
    EXPECT_TRUE(validJson(Line)) << Line.substr(0, 200);
  // The monitor's counters surface in the stats JSON artifact.
  std::string StatsDoc = slurp(StatsJson);
  EXPECT_NE(StatsDoc.find("mon.samples"), std::string::npos) << StatsJson;
  EXPECT_NE(StatsDoc.find("mon.mmu_10ms_ppm"), std::string::npos)
      << StatsJson;

  std::remove(Mon.c_str());
  std::remove(StatsJson.c_str());
}

TEST(Cli, VerifyCleanRunExitsZero) {
  CliOptions O;
  ASSERT_TRUE(parseOk({"--stress", "--heap=16384", "--verify", "-e",
                       wl::listChurn(20, 3)},
                      O));
  EXPECT_EQ(runTfgc(O), 0);
}

} // namespace
