//===- gcmeta/CompiledRoutines.cpp ----------------------------------------===//

#include "gcmeta/CompiledRoutines.h"

#include <cassert>
#include <sstream>

using namespace tfgc;

bool tfgc::isGroundType(Type *T) {
  T = T->resolved();
  if (T->isVar())
    return false;
  for (Type *A : T->args())
    if (!isGroundType(A))
      return false;
  if (T->getKind() == TypeKind::Fun)
    return isGroundType(T->result());
  return true;
}

static bool allCtorsNullary(const DatatypeInfo *Info) {
  for (const CtorInfo &C : Info->Ctors)
    if (!C.Fields.empty())
      return false;
  return true;
}

bool tfgc::isGcLeafType(Type *T) {
  T = T->resolved();
  switch (T->getKind()) {
  case TypeKind::Int:
  case TypeKind::Bool:
  case TypeKind::Unit:
  case TypeKind::Float: // Unboxed under the tag-free model.
    return true;
  case TypeKind::Data: {
    for (const CtorInfo &C : T->data()->Ctors)
      if (!C.Fields.empty())
        return false;
    return true;
  }
  default:
    return false;
  }
}

bool CompiledMetadata::isLeafType(Type *T) { return isGcLeafType(T); }

RoutineId CompiledMetadata::routineFor(Type *T) {
  T = T->resolved();
  assert(isGroundType(T) && "open types go through the TypeGc engine");

  std::string Key = Ctx->render(T);
  if (isLeafType(T))
    Key = "leaf";
  auto It = RoutineDedup.find(Key);
  if (It != RoutineDedup.end())
    return It->second;

  // Reserve the slot first so recursive types (lists, trees) terminate.
  Routines.emplace_back();
  RoutineId Id = (RoutineId)(Routines.size() - 1);
  RoutineDedup.emplace(Key, Id);

  TypeRoutine R;
  switch (T->getKind()) {
  case TypeKind::Int:
  case TypeKind::Bool:
  case TypeKind::Unit:
  case TypeKind::Float:
    R.F = TypeRoutine::Form::Leaf;
    break;
  case TypeKind::Tuple: {
    R.F = TypeRoutine::Form::Record;
    R.PayloadWords = T->numArgs();
    for (unsigned I = 0; I < T->numArgs(); ++I)
      if (!isLeafType(T->arg(I)))
        R.Fields.push_back({I, routineFor(T->arg(I))});
    break;
  }
  case TypeKind::Data: {
    DatatypeInfo *Info = T->data();
    if (allCtorsNullary(Info)) {
      R.F = TypeRoutine::Form::Leaf;
      break;
    }
    R.F = TypeRoutine::Form::DataSwitch;
    std::vector<Type *> Args(T->args().begin(), T->args().end());
    for (unsigned C = 0; C < Info->Ctors.size(); ++C) {
      std::vector<Type *> Fields =
          Ctx->instantiateCtorFields(Info, C, Args);
      R.CtorSizes.push_back(1 + (uint32_t)Fields.size());
      R.CtorFields.emplace_back();
      for (unsigned I = 0; I < Fields.size(); ++I)
        if (!isLeafType(Fields[I]))
          R.CtorFields.back().push_back({I + 1, routineFor(Fields[I])});
    }
    break;
  }
  case TypeKind::Ref: {
    R.F = TypeRoutine::Form::RefCell;
    R.PayloadWords = 1;
    if (!isLeafType(T->refElem()))
      R.Fields.push_back({0, routineFor(T->refElem())});
    break;
  }
  case TypeKind::Fun:
    R.F = TypeRoutine::Form::FunValue;
    R.FunStaticTy = T;
    break;
  case TypeKind::Var:
    assert(false && "unreachable: open type");
    break;
  }
  Routines[Id] = std::move(R);
  return Id;
}

void CompiledMetadata::build(const IrProgram &P, const ReconstructResult &RR) {
  Ctx = P.Types;
  Routines.clear();
  RoutineDedup.clear();
  FrameRoutines.clear();
  FrameDedup.clear();
  NoTraceSites = 0;

  // Frame routines, one per site, deduplicated (the paper: "there is only
  // one such routine, called no_trace, and many gc_words will point to
  // it").
  SiteToFrame.assign(P.Sites.size(), 0);
  for (const CallSiteInfo &S : P.Sites) {
    const IrFunction &F = P.fn(S.Caller);
    FrameRoutine FR;
    std::ostringstream Key;
    for (SlotIndex Slot : S.TraceSlots) {
      Type *Ty = F.SlotTypes[Slot]->resolved();
      if (isGroundType(Ty)) {
        if (isLeafType(Ty))
          continue;
        RoutineId R = routineFor(Ty);
        FR.Slots.push_back({Slot, R});
        Key << 's' << Slot << ':' << R << ';';
      } else {
        FR.Open.push_back({Slot, Ty});
        Key << 'o' << Slot << ':' << Ctx->render(Ty) << '@' << F.Id << ';';
      }
    }
    if (FR.isNoTrace())
      ++NoTraceSites;
    std::string K = Key.str();
    auto It = FrameDedup.find(K);
    uint32_t FrameId;
    if (It != FrameDedup.end()) {
      FrameId = It->second;
    } else {
      FrameRoutines.push_back(std::move(FR));
      FrameId = (uint32_t)(FrameRoutines.size() - 1);
      FrameDedup.emplace(std::move(K), FrameId);
    }
    SiteToFrame[S.Id] = FrameId;
  }

  // Closure routines for every closure-called function.
  ClosureRoutines.assign(P.Functions.size(), ClosureRoutine{});
  for (const IrFunction &F : P.Functions) {
    if (!F.IsClosure)
      continue;
    ClosureRoutine CR;
    CR.PayloadWords = 1 + (uint32_t)F.EnvTypes.size();
    for (unsigned I = 0; I < F.EnvTypes.size(); ++I) {
      Type *Ty = F.EnvTypes[I]->resolved();
      if (isGroundType(Ty)) {
        if (!isLeafType(Ty))
          CR.Fields.push_back({I + 1, routineFor(Ty)});
      } else {
        CR.Open.push_back({I + 1, Ty});
      }
    }
    CR.ParamPaths = RR.Paths[F.Id];
    ClosureRoutines[F.Id] = std::move(CR);
  }
}

size_t CompiledMetadata::sizeBytes() const {
  size_t Bytes = 0;
  for (const TypeRoutine &R : Routines) {
    Bytes += 24;
    Bytes += 16 * R.Fields.size();
    Bytes += 8 * R.CtorSizes.size();
    for (const auto &C : R.CtorFields)
      Bytes += 16 * C.size();
  }
  for (const FrameRoutine &R : FrameRoutines)
    Bytes += 16 + 16 * (R.Slots.size() + R.Open.size());
  for (const ClosureRoutine &R : ClosureRoutines)
    Bytes += R.PayloadWords == 0
                 ? 0
                 : 16 + 16 * (R.Fields.size() + R.Open.size());
  return Bytes;
}
